//! Zero-dependency deterministic PRNG for the whole workspace.
//!
//! The build environment is hermetic — no crates-io access — so the
//! workspace cannot depend on the `rand` crate. This crate provides
//! the small slice of `rand`'s API the simulator actually uses, built
//! on two well-studied generators:
//!
//! - [`SplitMix64`] — the seeding generator (Steele, Lea & Flood,
//!   OOPSLA '14). One 64-bit multiply-xorshift step per output; used
//!   to expand a `u64` seed into the 256-bit Xoshiro state and to
//!   derive independent per-case seeds in the test harness.
//! - [`Xoshiro256PlusPlus`] — Blackman & Vigna's xoshiro256++ 1.0,
//!   the same algorithm `rand`'s `SmallRng` used on 64-bit targets,
//!   which keeps the call sites honest: [`rngs::SmallRng`] is an alias
//!   for it here.
//!
//! Everything is deterministic given the seed: same seed, same stream,
//! on every platform. There is deliberately no `thread_rng` / OS
//! entropy — callers must seed explicitly, which is what makes
//! simulator runs and test failures replayable.
//!
//! # Example
//!
//! ```
//! use gopim_rng::rngs::SmallRng;
//! use gopim_rng::seq::SliceRandom;
//! use gopim_rng::{Rng, SeedableRng};
//!
//! let mut rng = SmallRng::seed_from_u64(7);
//! let die = rng.gen_range(1..=6);
//! assert!((1..=6).contains(&die));
//! let coin: f64 = rng.gen();
//! assert!((0.0..1.0).contains(&coin));
//! let mut deck: Vec<u32> = (0..52).collect();
//! deck.shuffle(&mut rng);
//!
//! // Same seed ⇒ same stream.
//! let a: Vec<u64> = {
//!     let mut r = SmallRng::seed_from_u64(42);
//!     (0..4).map(|_| r.next_u64()).collect()
//! };
//! let b: Vec<u64> = {
//!     let mut r = SmallRng::seed_from_u64(42);
//!     (0..4).map(|_| r.next_u64()).collect()
//! };
//! assert_eq!(a, b);
//! ```

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// SplitMix64: one multiply-xorshift step per output.
///
/// Passes BigCrush, has period 2^64, and — crucially for seeding —
/// maps *any* seed (including 0) to a well-mixed stream, so it is the
/// standard way to initialize xoshiro state from a single `u64`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a raw 64-bit state.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Advances the state and returns the next output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// One-shot stateless mix: hashes `(seed, stream)` into a new seed.
///
/// Used by the test harness to derive independent per-case seeds from
/// a single base seed without correlation between cases.
#[inline]
pub fn mix_seed(seed: u64, stream: u64) -> u64 {
    let mut sm = SplitMix64::new(seed ^ stream.wrapping_mul(0xA076_1D64_78BD_642F));
    sm.next_u64()
}

/// xoshiro256++ 1.0 (Blackman & Vigna, 2019).
///
/// 256 bits of state, period 2^256 − 1, passes BigCrush/PractRand.
/// This is the workhorse generator behind [`rngs::SmallRng`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl Xoshiro256PlusPlus {
    /// Advances the state and returns the next output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for Xoshiro256PlusPlus {
    fn seed_from_u64(seed: u64) -> Self {
        // Expand the seed through SplitMix64, per the xoshiro authors'
        // recommendation. The state cannot be all-zero this way.
        let mut sm = SplitMix64::new(seed);
        Xoshiro256PlusPlus {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }
}

/// Explicit-seed construction (the only construction there is — no OS
/// entropy in a hermetic workspace).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Primitive types drawable uniformly from a bounded interval (the
/// `SampleUniform` role). The generic range impls below delegate
/// here, which is what lets inference flow `Range<T> ⇒ T` exactly as
/// it does with `rand`.
pub trait Uniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: Rng + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: Rng + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! impl_uniform_uint {
    ($($t:ty),*) => {$(
        impl Uniform for $t {
            #[inline]
            fn sample_half_open<R: Rng + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as u128).wrapping_sub(lo as u128);
                lo.wrapping_add(reduce_u128(rng.next_u64(), span) as $t)
            }
            #[inline]
            fn sample_inclusive<R: Rng + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo.wrapping_add(reduce_u128(rng.next_u64(), span) as $t)
            }
        }
    )*};
}

impl_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl Uniform for $t {
            #[inline]
            fn sample_half_open<R: Rng + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                (lo as i128 + reduce_u128(rng.next_u64(), span) as i128) as $t
            }
            #[inline]
            fn sample_inclusive<R: Rng + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                (lo as i128 + reduce_u128(rng.next_u64(), span) as i128) as $t
            }
        }
    )*};
}

impl_uniform_int!(i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl Uniform for $t {
            #[inline]
            fn sample_half_open<R: Rng + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let unit = unit_f64(rng.next_u64()) as $t;
                lo + (hi - lo) * unit
            }
            #[inline]
            fn sample_inclusive<R: Rng + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                // Measure-zero difference from half-open; good enough
                // for simulation draws.
                assert!(lo <= hi, "gen_range: empty range");
                let unit = unit_f64(rng.next_u64()) as $t;
                lo + (hi - lo) * unit
            }
        }
    )*};
}

impl_uniform_float!(f32, f64);

/// Uniform sampling from range types, the `gen_range` plumbing.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: Uniform> SampleRange<T> for Range<T> {
    #[inline]
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: Uniform> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// Maps a uniform `u64` into `[0, span)` (multiply-shift reduction —
/// unbiased enough for simulation work, and monotone in the raw draw,
/// which the test harness's shrinker relies on).
#[inline]
fn reduce_u128(raw: u64, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span <= u64::MAX as u128 {
        ((raw as u128) * span) >> 64
    } else {
        raw as u128 // span > 2^64 can only come from full-width ranges
    }
}

/// Converts a `u64` to a uniform `f64` in `[0, 1)` using the top 53
/// bits (the standard `rand` conversion).
#[inline]
fn unit_f64(raw: u64) -> f64 {
    (raw >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Values drawable via [`Rng::gen`] (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value.
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    #[inline]
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64()) as f32
    }
}

impl Standard for u64 {
    #[inline]
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    #[inline]
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The user-facing generator interface (the used subset of `rand::Rng`).
pub trait Rng {
    /// Advances the generator and returns 64 uniform bits.
    fn next_u64(&mut self) -> u64;

    /// Draws uniformly from `range` (half-open or inclusive).
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} not in [0, 1]");
        unit_f64(self.next_u64()) < p
    }

    /// Draws a value of `T` from its standard distribution
    /// (`f64`/`f32` uniform in `[0, 1)`, integers full-width, `bool`
    /// fair).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }
}

impl Rng for Xoshiro256PlusPlus {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        Xoshiro256PlusPlus::next_u64(self)
    }
}

impl Rng for SplitMix64 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        SplitMix64::next_u64(self)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    /// The workspace's default small, fast generator — xoshiro256++,
    /// the same algorithm `rand`'s 64-bit `SmallRng` used.
    pub type SmallRng = super::Xoshiro256PlusPlus;
}

/// Slice utilities, mirroring `rand::seq`.
pub mod seq {
    use super::Rng;

    /// Shuffling and choosing on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle, uniform over permutations.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);

        /// Uniformly chosen element, or `None` if empty.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference outputs for seed 1234567 from the public-domain
        // splitmix64.c.
        let mut sm = SplitMix64::new(1234567);
        assert_eq!(sm.next_u64(), 6457827717110365317);
        assert_eq!(sm.next_u64(), 3203168211198807973);
    }

    #[test]
    fn streams_are_deterministic_and_seed_sensitive() {
        let mut a = SmallRng::seed_from_u64(9);
        let mut b = SmallRng::seed_from_u64(9);
        let mut c = SmallRng::seed_from_u64(10);
        let (va, vb, vc): (Vec<u64>, Vec<u64>, Vec<u64>) = (
            (0..16).map(|_| a.next_u64()).collect(),
            (0..16).map(|_| b.next_u64()).collect(),
            (0..16).map(|_| c.next_u64()).collect(),
        );
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.gen_range(5usize..17);
            assert!((5..17).contains(&v));
            let w = rng.gen_range(2u32..=3);
            assert!((2..=3).contains(&w));
            let f = rng.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&f));
            let s = rng.gen_range(-7i64..-2);
            assert!((-7..-2).contains(&s));
        }
    }

    #[test]
    fn gen_range_covers_small_ranges_uniformly() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut counts = [0usize; 6];
        for _ in 0..60_000 {
            counts[rng.gen_range(0usize..6)] += 1;
        }
        for &c in &counts {
            // Each bucket expects 10 000; allow ±5 %.
            assert!((9_500..=10_500).contains(&c), "counts {counts:?}");
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = SmallRng::seed_from_u64(5);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((29_000..=31_000).contains(&hits), "hits {hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn unit_f64_is_in_unit_interval_and_unbiased() {
        let mut rng = SmallRng::seed_from_u64(8);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(21);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        // 100 elements virtually never shuffle to identity.
        assert_ne!(v, (0..100).collect::<Vec<u32>>());
    }

    #[test]
    fn choose_returns_member() {
        let mut rng = SmallRng::seed_from_u64(2);
        let v = [10, 20, 30];
        for _ in 0..100 {
            assert!(v.contains(v.choose(&mut rng).unwrap()));
        }
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn mix_seed_decorrelates_streams() {
        let a = mix_seed(0, 0);
        let b = mix_seed(0, 1);
        let c = mix_seed(1, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, mix_seed(0, 0));
    }
}
