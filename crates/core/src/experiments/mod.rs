//! One module per paper table/figure (see DESIGN.md §3 for the full
//! index). Each returns typed rows; the `gopim-bench` binaries format
//! and print them.

pub mod faults;
pub mod fig04;
pub mod fig06;
pub mod fig09;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod fig17;
pub mod table05;
pub mod table06;
pub mod table07;
