//! Fault-injection degradation campaign (reproduction extension, not a
//! paper figure).
//!
//! Sweeps stuck-at/transient fault rates against every
//! [`MitigationPolicy`] on the GoPIM pipeline and reports graceful
//! degradation: makespan and energy relative to the fault-free run,
//! plus the accuracy cost of feature rows stranded on dead crossbars.
//! Every cell is seeded — the same [`CampaignConfig`] replays
//! bit-identically — and the rate-0.0 rows are bit-identical to the
//! fault-free reference, which is the differential guarantee
//! `tests/faults_differential.rs` locks in.

use gopim_alloc::greedy_allocate;
use gopim_faults::{FaultConfig, FaultPlan, FaultSession, MitigationPolicy, SessionConfig};
use gopim_gcn::train::{train_gcn, TrainOptions};
use gopim_graph::datasets::Dataset;
use gopim_mapping::{remap_to_spares, stranded_vertices};
use gopim_pipeline::des::{simulate_des, simulate_des_faulty, ReplicaModel};
use gopim_pipeline::energy::energy_with_extra_writes;
use gopim_pipeline::latency::LatencyParams;
use gopim_pipeline::workload::mapping_for;
use gopim_pipeline::MappingKind;
use gopim_reram::spec::AcceleratorSpec;

use gopim_cache::{CacheValue, CanonicalHash, CanonicalHasher, Decoder, Encoder};

use crate::report;
use crate::runner::{alloc_input, build_workload, Estimator, RunConfig};
use crate::system::System;

/// Knobs of one degradation campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignConfig {
    /// Seed for fault plans, graph stand-ins and training.
    pub seed: u64,
    /// Stuck-at rates to sweep (fraction of each feature stage's
    /// crossbar groups struck within the horizon). `0.0` rows are the
    /// differential control and must match the fault-free reference
    /// bit for bit.
    pub fault_rates: Vec<f64>,
    /// Fraction of the leftover crossbar pool the allocator reserves
    /// as remap spares before replication.
    pub spare_fraction: f64,
    /// Transient write-failure probability per stuck rate unit
    /// (`transient_rate = stuck_rate × transient_scale`).
    pub transient_scale: f64,
    /// Micro-batch size.
    pub micro_batch: usize,
    /// Crossbar budget; `None` = the full 16 GB chip.
    pub crossbar_budget: Option<usize>,
    /// Vertices of the numeric stand-in graph used for the accuracy
    /// column.
    pub train_vertices: usize,
    /// Training epochs on the stand-in graph.
    pub epochs: usize,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            seed: 7,
            fault_rates: vec![0.0, 0.05, 0.2],
            spare_fraction: 0.02,
            transient_scale: 0.25,
            micro_batch: 64,
            // The reduced chip of the runner tests: keeps the greedy
            // allocator fast while preserving every qualitative
            // relationship.
            crossbar_budget: Some(300_000),
            train_vertices: 240,
            epochs: 30,
        }
    }
}

impl CampaignConfig {
    /// A small configuration for tests and smoke runs.
    pub fn quick_test() -> Self {
        CampaignConfig {
            fault_rates: vec![0.0, 0.2],
            train_vertices: 160,
            epochs: 12,
            ..CampaignConfig::default()
        }
    }
}

impl CanonicalHash for CampaignConfig {
    fn canonical_hash(&self, h: &mut CanonicalHasher) {
        h.write_tag("experiments.campaign_config/v1");
        h.write_u64(self.seed);
        self.fault_rates.canonical_hash(h);
        h.write_f64(self.spare_fraction);
        h.write_f64(self.transient_scale);
        h.write_usize(self.micro_batch);
        self.crossbar_budget.canonical_hash(h);
        h.write_usize(self.train_vertices);
        h.write_usize(self.epochs);
    }
}

/// One `(policy, fault rate)` cell of the degradation table.
#[derive(Debug, Clone, PartialEq)]
pub struct DegradationRow {
    /// Mitigation policy name.
    pub policy: &'static str,
    /// Stuck-at rate of this cell.
    pub fault_rate: f64,
    /// End-to-end makespan, ns.
    pub makespan_ns: f64,
    /// Makespan relative to the fault-free run (1.0 = unchanged).
    pub makespan_vs_clean: f64,
    /// Total energy, nJ.
    pub energy_nj: f64,
    /// Energy relative to the fault-free run.
    pub energy_vs_clean: f64,
    /// Final test accuracy on the stand-in graph.
    pub accuracy: f64,
    /// Accuracy − fault-free accuracy, percentage points.
    pub accuracy_delta_pp: f64,
    /// Fault events fired.
    pub injected: u64,
    /// Dead groups remapped onto spares.
    pub remapped: u64,
    /// Transient write retries issued.
    pub retries: u64,
    /// Rows lost to unmitigated faults.
    pub dropped_rows: u64,
    /// Stand-in vertices whose feature rows froze (stranded).
    pub frozen_vertices: usize,
}

/// A full campaign: the fault-free reference plus the sweep rows.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignReport {
    /// Dataset name.
    pub dataset: String,
    /// Seed the campaign ran under.
    pub seed: u64,
    /// Spare groups the allocator reserved.
    pub spare_groups: usize,
    /// Fault-free makespan, ns.
    pub clean_makespan_ns: f64,
    /// Fault-free total energy, nJ.
    pub clean_energy_nj: f64,
    /// Fault-free stand-in accuracy.
    pub clean_accuracy: f64,
    /// One row per `(fault rate, policy)`, rates outer, policies in
    /// [`MitigationPolicy::ALL`] order.
    pub rows: Vec<DegradationRow>,
}

/// Resolves a decoded policy name back to the interned `&'static str`
/// the rows carry; an unknown name means a corrupt or foreign record
/// and fails the decode (→ cache miss).
fn interned_policy_name(name: &str) -> Option<&'static str> {
    MitigationPolicy::ALL
        .iter()
        .map(|p| p.name())
        .find(|n| *n == name)
}

impl CacheValue for DegradationRow {
    fn encode(&self, e: &mut Encoder) {
        e.put_str(self.policy);
        e.put_f64(self.fault_rate);
        e.put_f64(self.makespan_ns);
        e.put_f64(self.makespan_vs_clean);
        e.put_f64(self.energy_nj);
        e.put_f64(self.energy_vs_clean);
        e.put_f64(self.accuracy);
        e.put_f64(self.accuracy_delta_pp);
        e.put_u64(self.injected);
        e.put_u64(self.remapped);
        e.put_u64(self.retries);
        e.put_u64(self.dropped_rows);
        e.put_usize(self.frozen_vertices);
    }
    fn decode(d: &mut Decoder<'_>) -> Option<Self> {
        Some(DegradationRow {
            policy: interned_policy_name(&d.take_str()?)?,
            fault_rate: d.take_f64()?,
            makespan_ns: d.take_f64()?,
            makespan_vs_clean: d.take_f64()?,
            energy_nj: d.take_f64()?,
            energy_vs_clean: d.take_f64()?,
            accuracy: d.take_f64()?,
            accuracy_delta_pp: d.take_f64()?,
            injected: d.take_u64()?,
            remapped: d.take_u64()?,
            retries: d.take_u64()?,
            dropped_rows: d.take_u64()?,
            frozen_vertices: d.take_usize()?,
        })
    }
}

impl CacheValue for CampaignReport {
    fn encode(&self, e: &mut Encoder) {
        e.put_str(&self.dataset);
        e.put_u64(self.seed);
        e.put_usize(self.spare_groups);
        e.put_f64(self.clean_makespan_ns);
        e.put_f64(self.clean_energy_nj);
        e.put_f64(self.clean_accuracy);
        self.rows.encode(e);
    }
    fn decode(d: &mut Decoder<'_>) -> Option<Self> {
        Some(CampaignReport {
            dataset: d.take_str()?,
            seed: d.take_u64()?,
            spare_groups: d.take_usize()?,
            clean_makespan_ns: d.take_f64()?,
            clean_energy_nj: d.take_f64()?,
            clean_accuracy: d.take_f64()?,
            rows: Vec::decode(d)?,
        })
    }
}

/// Everything one sweep cell needs besides the shared workload.
struct CellOutcome {
    makespan_ns: f64,
    energy_nj: f64,
    injected: u64,
    remapped: u64,
    retries: u64,
    dropped_rows: u64,
    frozen: usize,
}

/// Projects a stranded-vertex count from the full dataset profile onto
/// the numeric stand-in graph: the stand-in freezes the same *fraction*
/// of its vertices (ids `0..k`), so the accuracy column tracks how much
/// of the feature array went stale without needing the stand-in and the
/// profile to share vertex ids.
fn standin_frozen(stranded: usize, total_vertices: usize, train_vertices: usize) -> usize {
    if total_vertices == 0 {
        return 0;
    }
    let fraction = stranded as f64 / total_vertices as f64;
    ((fraction * train_vertices as f64).round() as usize).min(train_vertices)
}

/// Runs the degradation campaign for one dataset.
///
/// The whole report is cached under its canonical key — a campaign is
/// a pure function of `(dataset, config)` plus the latency model, and
/// replays bit-identically by contract, so a warm re-run (same process
/// or `GOPIM_CACHE` disk tier) skips simulation *and* the stand-in
/// training entirely. `tests/faults_differential.rs` pins cached ==
/// fresh bitwise.
///
/// # Panics
///
/// Panics if `config.fault_rates` is empty.
pub fn run(dataset: Dataset, config: &CampaignConfig) -> CampaignReport {
    assert!(!config.fault_rates.is_empty(), "need at least one rate");
    let mut h = CanonicalHasher::new();
    h.write_tag("experiments.fault_campaign/v1");
    dataset.canonical_hash(&mut h);
    config.canonical_hash(&mut h);
    LatencyParams::paper().canonical_hash(&mut h);
    gopim_cache::global().get_or_compute(h.finish(), || run_fresh(dataset, config))
}

fn run_fresh(dataset: Dataset, config: &CampaignConfig) -> CampaignReport {
    let run_config = RunConfig {
        micro_batch: config.micro_batch,
        crossbar_budget: config.crossbar_budget,
        profile_seed: config.seed,
        ..RunConfig::default()
    };
    let profile = dataset.profile(config.seed);
    let workload = build_workload(dataset, System::Gopim, &run_config);
    let spec = AcceleratorSpec::paper();
    let total = config
        .crossbar_budget
        .unwrap_or_else(|| spec.total_crossbars());
    let budget = total.saturating_sub(workload.base_crossbars());
    let mut input = alloc_input(&workload, profile.avg_degree(), budget, &Estimator::Exact);
    // Satellite tie-in: the allocator gives up part of its pool as
    // remap spares *before* replication, so mitigation capacity is
    // paid for in crossbars, not conjured.
    let spares = input.reserve_spares(config.spare_fraction);
    let replicas = greedy_allocate(&input).replicas;

    // Fault-free reference (the differential baseline).
    let clean = simulate_des(&workload, &replicas, ReplicaModel::DiscreteServers);
    let clean_energy =
        energy_with_extra_writes(&spec, &workload, &replicas, clean.makespan_ns, 0.0, 1).total_nj();

    // The vertex mapping shared by the feature stages: fault plans are
    // drawn over its groups, and dead groups strand its vertex lists.
    let mapping = mapping_for(&profile, MappingKind::Interleaved, spec.crossbar_rows);
    let stage_groups: Vec<usize> = workload
        .stages()
        .iter()
        .map(|s| {
            if s.kind.maps_features() {
                mapping.num_groups()
            } else {
                0
            }
        })
        .collect();
    let ns_per_row = LatencyParams::paper().row_write_ns();

    // Simulate every (rate, policy) cell; each is independent and
    // seeded, so the fan-out cannot perturb results.
    let cells: Vec<(f64, MitigationPolicy)> = config
        .fault_rates
        .iter()
        .flat_map(|&rate| MitigationPolicy::ALL.iter().map(move |&p| (rate, p)))
        .collect();
    let outcomes = gopim_par::par_map(&cells, |&(rate, policy)| {
        let plan = FaultPlan::generate(
            FaultConfig {
                seed: config.seed,
                stuck_rate: rate,
                transient_rate: rate * config.transient_scale,
                horizon_ns: clean.makespan_ns,
            },
            &stage_groups,
        );
        let mut scfg = SessionConfig::new(policy);
        scfg.ns_per_row = ns_per_row;
        scfg.remap_rows = spec.crossbar_rows;
        scfg.spare_groups = spares;
        let mut session = FaultSession::new(plan, scfg, &stage_groups);
        let result = simulate_des_faulty(
            &workload,
            &replicas,
            ReplicaModel::DiscreteServers,
            &mut session,
        );
        let stats = *session.stats();
        let energy_nj = energy_with_extra_writes(
            &spec,
            &workload,
            &replicas,
            result.makespan_ns,
            stats.extra_rows,
            1,
        )
        .total_nj();

        // Union of dead groups across the feature stages → stranded
        // feature rows → frozen stand-in vertices.
        let mut dead = vec![false; mapping.num_groups()];
        for (i, groups) in stage_groups.iter().enumerate() {
            for g in 0..*groups {
                if session.is_dead(i, g as u32) {
                    dead[g] = true;
                }
            }
        }
        let stranded = match policy {
            MitigationPolicy::Baseline | MitigationPolicy::Retry => {
                stranded_vertices(&mapping, &dead).len()
            }
            MitigationPolicy::Remap => {
                // Spares (or the index-based fallback) keep every
                // vertex writable; only total loss strands anything.
                let outcome = remap_to_spares(&mapping, &dead, spares);
                if outcome.fallback && outcome.moved_vertices == 0 {
                    mapping.num_vertices()
                } else {
                    0
                }
            }
        };
        CellOutcome {
            makespan_ns: result.makespan_ns,
            energy_nj,
            injected: stats.injected,
            remapped: stats.remapped,
            retries: stats.retries,
            dropped_rows: stats.dropped_rows,
            frozen: standin_frozen(stranded, mapping.num_vertices(), config.train_vertices),
        }
    });

    // Train once per distinct frozen-prefix size (cells share the
    // fault-free accuracy, so the campaign does not retrain per cell).
    let mut frozen_sizes: Vec<usize> = outcomes.iter().map(|o| o.frozen).collect();
    frozen_sizes.push(0); // the clean reference
    frozen_sizes.sort_unstable();
    frozen_sizes.dedup();
    let accuracies = gopim_par::par_map(&frozen_sizes, |&k| {
        let (graph, labels) = dataset.numeric_graph(config.train_vertices, config.seed);
        let options = TrainOptions {
            epochs: config.epochs,
            seed: config.seed,
            frozen_vertices: (0..k as u32).collect(),
            freeze_epoch: config.epochs / 4,
            ..TrainOptions::quick_test()
        };
        train_gcn(&graph, &labels, &options).test_accuracy
    });
    let accuracy_of = |k: usize| -> f64 {
        let idx = frozen_sizes
            .binary_search(&k)
            // lint:allow(no-panic-in-lib): frozen_sizes is the sorted dedup of exactly the k values queried below
            .expect("every frozen size was trained");
        accuracies[idx]
    };
    let clean_accuracy = accuracy_of(0);

    let rows = cells
        .iter()
        .zip(&outcomes)
        .map(|(&(rate, policy), o)| {
            let accuracy = accuracy_of(o.frozen);
            DegradationRow {
                policy: policy.name(),
                fault_rate: rate,
                makespan_ns: o.makespan_ns,
                makespan_vs_clean: o.makespan_ns / clean.makespan_ns,
                energy_nj: o.energy_nj,
                energy_vs_clean: o.energy_nj / clean_energy,
                accuracy,
                accuracy_delta_pp: (accuracy - clean_accuracy) * 100.0,
                injected: o.injected,
                remapped: o.remapped,
                retries: o.retries,
                dropped_rows: o.dropped_rows,
                frozen_vertices: o.frozen,
            }
        })
        .collect();
    CampaignReport {
        dataset: dataset.name().to_string(),
        seed: config.seed,
        spare_groups: spares,
        clean_makespan_ns: clean.makespan_ns,
        clean_energy_nj: clean_energy,
        clean_accuracy,
        rows,
    }
}

/// Formats a campaign as the degradation table the CLI and bench
/// binary print (also the golden-snapshot shape).
pub fn degradation_table(report: &CampaignReport) -> String {
    let mut out = format!(
        "fault campaign on {} (seed {}, {} spare groups)\n\
         fault-free: makespan {}, energy {:.3e} nJ, accuracy {:.3}\n",
        report.dataset,
        report.seed,
        report.spare_groups,
        report::time_ns(report.clean_makespan_ns),
        report.clean_energy_nj,
        report.clean_accuracy,
    );
    let rows: Vec<Vec<String>> = report
        .rows
        .iter()
        .map(|r| {
            vec![
                r.policy.to_string(),
                format!("{:.3}", r.fault_rate),
                report::time_ns(r.makespan_ns),
                format!("{:.4}x", r.makespan_vs_clean),
                format!("{:.4}x", r.energy_vs_clean),
                format!("{:.3}", r.accuracy),
                format!("{:+.2}", r.accuracy_delta_pp),
                r.injected.to_string(),
                r.remapped.to_string(),
                r.retries.to_string(),
                r.dropped_rows.to_string(),
                r.frozen_vertices.to_string(),
            ]
        })
        .collect();
    out.push_str(&report::table(
        &[
            "policy",
            "rate",
            "makespan",
            "vs clean",
            "energy vs clean",
            "accuracy",
            "Δpp",
            "injected",
            "remapped",
            "retries",
            "dropped",
            "frozen",
        ],
        &rows,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_zero_rows_match_the_fault_free_reference_bitwise() {
        let report = run(Dataset::Ddi, &CampaignConfig::quick_test());
        assert_eq!(report.rows.len(), 2 * MitigationPolicy::ALL.len());
        for row in &report.rows[..MitigationPolicy::ALL.len()] {
            assert_eq!(row.fault_rate, 0.0);
            assert_eq!(
                row.makespan_ns.to_bits(),
                report.clean_makespan_ns.to_bits()
            );
            assert_eq!(row.energy_nj.to_bits(), report.clean_energy_nj.to_bits());
            assert_eq!(row.accuracy.to_bits(), report.clean_accuracy.to_bits());
            assert_eq!(row.injected, 0);
            assert_eq!(row.frozen_vertices, 0);
        }
    }

    #[test]
    fn nonzero_rates_stretch_the_makespan_and_replay_identically() {
        let config = CampaignConfig::quick_test();
        let a = run(Dataset::Ddi, &config);
        // The second run bypasses every cache tier, so this pins both
        // the seeded replay AND cached == fresh for whole campaigns.
        let b = gopim_cache::with_disabled(|| run(Dataset::Ddi, &config));
        assert_eq!(a, b, "campaign must replay bit-identically");
        let faulted = &a.rows[MitigationPolicy::ALL.len()..];
        assert!(faulted.iter().any(|r| r.injected > 0));
        // Mitigation costs simulated time: retry/remap rows are
        // strictly slower than fault-free; baseline never is.
        for row in faulted {
            assert!(row.makespan_vs_clean >= 1.0, "{row:?}");
            if row.policy != "baseline" && row.retries + row.remapped > 0 {
                assert!(row.makespan_vs_clean > 1.0, "{row:?}");
            }
        }
        // Remap protects accuracy: no stranded vertices while spares
        // hold, while baseline strands every dead group's rows.
        let baseline = faulted.iter().find(|r| r.policy == "baseline").unwrap();
        let remap = faulted.iter().find(|r| r.policy == "remap").unwrap();
        assert!(baseline.frozen_vertices >= remap.frozen_vertices);
    }

    #[test]
    fn spare_reservation_is_reported() {
        let report = run(Dataset::Cora, &CampaignConfig::quick_test());
        assert!(report.spare_groups > 0, "default fraction reserves spares");
    }
}
