//! Fig. 15: per-stage crossbar idle time, Naive vs GoPIM, for
//! micro-batch sizes 32/64/128 on ddi.
//!
//! `Naive` is a pipelined accelerator with index-based mapping and no
//! replicas; GoPIM's ML-allocated replicas shorten the long stages and
//! thereby cut every stage's idle share (the paper reports average
//! reductions of 46.75 %/49.75 %/51.75 % for the three sizes).

use gopim_graph::datasets::Dataset;

use crate::runner::{run_ablation_cached, run_system_cached, RunConfig};
use crate::system::{Ablation, System};

/// One bar of Fig. 15.
#[derive(Debug, Clone, PartialEq)]
pub struct IdleComparisonRow {
    /// Micro-batch size.
    pub micro_batch: usize,
    /// `Naive` or `GoPIM`.
    pub system: String,
    /// Stage label (`XBS1`…).
    pub stage: String,
    /// Idle fraction.
    pub idle_fraction: f64,
}

/// Runs the Fig. 15 sweep on one dataset.
pub fn run(
    config: &RunConfig,
    dataset: Dataset,
    micro_batches: &[usize],
) -> Vec<IdleComparisonRow> {
    // Each (micro-batch, system) pair is an independent simulation.
    let cells: Vec<(usize, &str)> = micro_batches
        .iter()
        .flat_map(|&b| [(b, "Naive"), (b, "GoPIM")])
        .collect();
    let runs = gopim_par::par_map(&cells, |&(b, label)| {
        let cfg = RunConfig {
            micro_batch: b,
            ..config.clone()
        };
        if label == "Naive" {
            run_ablation_cached(dataset, Ablation::PlusPp, &cfg)
        } else {
            run_system_cached(dataset, System::Gopim, &cfg)
        }
    });
    let mut rows = Vec::new();
    for (&(b, label), run) in cells.iter().zip(&runs) {
        for (i, st) in run.schedule.stages.iter().enumerate() {
            rows.push(IdleComparisonRow {
                micro_batch: b,
                system: label.to_string(),
                stage: format!("XBS{}", i + 1),
                idle_fraction: st.stage_idle_fraction,
            });
        }
    }
    rows
}

/// Mean idle reduction (percentage points) of GoPIM vs Naive at one
/// micro-batch size.
pub fn mean_reduction(rows: &[IdleComparisonRow], micro_batch: usize) -> f64 {
    let mean = |system: &str| -> f64 {
        let vals: Vec<f64> = rows
            .iter()
            .filter(|r| r.micro_batch == micro_batch && r.system == system)
            .map(|r| r.idle_fraction)
            .collect();
        vals.iter().sum::<f64>() / vals.len() as f64
    };
    mean("Naive") - mean("GoPIM")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gopim_cuts_idle_time_at_every_batch_size() {
        let config = RunConfig {
            crossbar_budget: Some(400_000),
            ..RunConfig::default()
        };
        let rows = run(&config, Dataset::Ddi, &[32, 64]);
        for b in [32, 64] {
            let red = mean_reduction(&rows, b);
            assert!(red > 0.1, "batch {b}: reduction {red}");
        }
    }
}
