//! Fig. 13: the headline end-to-end comparison — speedup (a) and
//! normalized energy (b) of every system against `Serial`, per dataset.
//! Also covers the §VII-F sparse-dataset (Cora) run.

use gopim_graph::datasets::Dataset;

use crate::runner::{run_systems, RunConfig, SystemRun};
use crate::system::System;

/// One (dataset, system) cell of Fig. 13.
#[derive(Debug, Clone, PartialEq)]
pub struct ComparisonRow {
    /// Dataset name.
    pub dataset: String,
    /// System name.
    pub system: String,
    /// End-to-end time, ns.
    pub makespan_ns: f64,
    /// Total energy, nJ.
    pub energy_nj: f64,
    /// Speedup over `Serial` on the same dataset.
    pub speedup: f64,
    /// Energy saving factor over `Serial` (>1 = better).
    pub energy_saving: f64,
}

/// Runs the Fig. 13 comparison over the given datasets and all six
/// systems.
pub fn run(config: &RunConfig, datasets: &[Dataset]) -> Vec<ComparisonRow> {
    // One cached parallel sweep over the full (dataset, system) grid:
    // `run_systems` dedups identical tuples, consults the run cache,
    // and fans misses over the pool. Row order is unchanged — results
    // come back in input order, bitwise identical to serial
    // `run_system` calls.
    let cells: Vec<(Dataset, System)> = datasets
        .iter()
        .flat_map(|&d| System::ALL.iter().map(move |&s| (d, s)))
        .collect();
    let all_runs = run_systems(&cells, config);
    let mut rows = Vec::new();
    for (&dataset, runs) in datasets.iter().zip(all_runs.chunks(System::ALL.len())) {
        let runs: &[SystemRun] = runs;
        let serial_time = runs[0].makespan_ns;
        let serial_energy = runs[0].energy_nj();
        for r in runs {
            rows.push(ComparisonRow {
                dataset: dataset.name().to_string(),
                system: r.system_name.clone(),
                makespan_ns: r.makespan_ns,
                energy_nj: r.energy_nj(),
                speedup: serial_time / r.makespan_ns,
                energy_saving: serial_energy / r.energy_nj(),
            });
        }
    }
    rows
}

/// Looks up one cell.
///
/// # Panics
///
/// Panics if the (dataset, system) pair is absent.
pub fn cell<'a>(rows: &'a [ComparisonRow], dataset: &str, system: &str) -> &'a ComparisonRow {
    rows.iter()
        .find(|r| r.dataset == dataset && r.system == system)
        // lint:allow(no-panic-in-lib): documented panicking lookup for experiment tables (see # Panics above)
        .unwrap_or_else(|| panic!("no row for ({dataset}, {system})"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gopim_wins_everywhere_and_ddi_shows_the_largest_speedup() {
        let config = RunConfig {
            crossbar_budget: Some(400_000),
            ..RunConfig::default()
        };
        let rows = run(&config, &[Dataset::Ddi, Dataset::Cora]);
        for dataset in ["ddi", "Cora"] {
            let gopim = cell(&rows, dataset, "GoPIM");
            for system in [
                "Serial",
                "SlimGNN-like",
                "ReGraphX",
                "ReFlip",
                "GoPIM-Vanilla",
            ] {
                let other = cell(&rows, dataset, system);
                assert!(
                    gopim.speedup >= other.speedup,
                    "{dataset}: GoPIM {} vs {system} {}",
                    gopim.speedup,
                    other.speedup
                );
            }
        }
        // Paper: the smallest dataset (ddi) sees the largest speedup
        // because replicas are cheap.
        let ddi = cell(&rows, "ddi", "GoPIM").speedup;
        assert!(ddi > 50.0, "ddi speedup {ddi}");
    }
}
