//! Fig. 16: sensitivity studies.
//!
//! (a)/(b) accuracy vs the selective-updating threshold θ for a dense
//! graph (ddi-like) and a sparse graph (Cora-like) — the paper finds
//! θ = 50 % safe for dense and θ = 80 % for sparse graphs;
//! (c) speedup vs micro-batch size.

use gopim_cache::{CacheValue, CanonicalHash, CanonicalHasher, Decoder, Encoder};
use gopim_gcn::train::{train_gcn, TrainOptions};
use gopim_graph::datasets::Dataset;
use gopim_mapping::SelectivePolicy;

use crate::runner::{run_system_cached, RunConfig};
use crate::system::System;

/// One point of the θ-accuracy sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ThetaAccuracyRow {
    /// Dataset name.
    pub dataset: String,
    /// Threshold θ (1.0 = no sparsification).
    pub theta: f64,
    /// Held-out accuracy.
    pub test_accuracy: f64,
}

impl CacheValue for ThetaAccuracyRow {
    fn encode(&self, e: &mut Encoder) {
        e.put_str(&self.dataset);
        e.put_f64(self.theta);
        e.put_f64(self.test_accuracy);
    }
    fn decode(d: &mut Decoder<'_>) -> Option<Self> {
        Some(ThetaAccuracyRow {
            dataset: d.take_str()?,
            theta: d.take_f64()?,
            test_accuracy: d.take_f64()?,
        })
    }
}

/// Runs the θ sweep for one dataset's numeric stand-in graph. The sweep
/// trains one GCN per θ — deterministic in `(dataset, seed, options)` —
/// so the whole row set is cached under its canonical inputs.
pub fn theta_sweep(
    dataset: Dataset,
    thetas: &[f64],
    max_vertices: usize,
    train_options: &TrainOptions,
    seed: u64,
) -> Vec<ThetaAccuracyRow> {
    let mut h = CanonicalHasher::new();
    h.write_tag("experiments.fig16.theta_sweep/v1");
    dataset.canonical_hash(&mut h);
    thetas.canonical_hash(&mut h);
    h.write_usize(max_vertices);
    train_options.canonical_hash(&mut h);
    h.write_u64(seed);
    gopim_cache::global().get_or_compute(h.finish(), || {
        theta_sweep_fresh(dataset, thetas, max_vertices, train_options, seed)
    })
}

fn theta_sweep_fresh(
    dataset: Dataset,
    thetas: &[f64],
    max_vertices: usize,
    train_options: &TrainOptions,
    seed: u64,
) -> Vec<ThetaAccuracyRow> {
    let (graph, labels) = dataset.numeric_graph(max_vertices, seed);
    thetas
        .iter()
        .map(|&theta| {
            let mut opts = train_options.clone();
            opts.selective = if theta >= 1.0 {
                None
            } else {
                Some(SelectivePolicy::with_theta(theta, 20))
            };
            let report = train_gcn(&graph, &labels, &opts);
            ThetaAccuracyRow {
                dataset: dataset.name().to_string(),
                theta,
                test_accuracy: report.test_accuracy,
            }
        })
        .collect()
}

/// One point of the micro-batch-size speedup sweep (Fig. 16(c)).
#[derive(Debug, Clone, PartialEq)]
pub struct BatchSpeedupRow {
    /// Micro-batch size.
    pub micro_batch: usize,
    /// GoPIM speedup over Serial.
    pub speedup: f64,
}

/// Runs the micro-batch sweep.
pub fn batch_sweep(config: &RunConfig, dataset: Dataset, sizes: &[usize]) -> Vec<BatchSpeedupRow> {
    sizes
        .iter()
        .map(|&b| {
            let cfg = RunConfig {
                micro_batch: b,
                ..config.clone()
            };
            let serial = run_system_cached(dataset, System::Serial, &cfg);
            let gopim = run_system_cached(dataset, System::Gopim, &cfg);
            BatchSpeedupRow {
                micro_batch: b,
                speedup: serial.makespan_ns / gopim.makespan_ns,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moderate_theta_keeps_accuracy_close_to_full_updating() {
        let rows = theta_sweep(
            Dataset::Ddi,
            &[0.5, 1.0],
            250,
            &TrainOptions::quick_test(),
            3,
        );
        let at = |theta: f64| {
            rows.iter()
                .find(|r| r.theta == theta)
                .unwrap()
                .test_accuracy
        };
        assert!(at(1.0) > 0.5, "baseline accuracy {}", at(1.0));
        assert!(
            (at(1.0) - at(0.5)).abs() < 0.15,
            "theta 0.5 {} vs full {}",
            at(0.5),
            at(1.0)
        );
    }

    #[test]
    fn larger_micro_batches_increase_speedup() {
        let config = RunConfig {
            crossbar_budget: Some(400_000),
            ..RunConfig::default()
        };
        let rows = batch_sweep(&config, Dataset::Ddi, &[16, 128]);
        assert!(rows[1].speedup > rows[0].speedup, "{rows:?}");
    }
}
