//! Fig. 4: idle-time percentage of crossbars for the forward-pass
//! stages under a SlimGNN-style pipeline, across the six motivation
//! datasets.
//!
//! The paper's headline numbers: the Combination-stage crossbars
//! (XBS1/3/5) idle 98.47 %, 97.50 % and 99.03 % of the time on average.

use gopim_graph::datasets::Dataset;

use crate::runner::{run_systems, RunConfig};
use crate::system::System;

/// One bar of Fig. 4.
#[derive(Debug, Clone, PartialEq)]
pub struct IdleRow {
    /// Dataset name.
    pub dataset: String,
    /// Stage label (`XBS1` = crossbars of the 1st forward stage, …).
    pub stage: String,
    /// Kind label (CO/AG) for readability.
    pub kind: String,
    /// Idle fraction in `[0, 1]`.
    pub idle_fraction: f64,
}

/// Runs the Fig. 4 analysis for the given datasets.
pub fn run(config: &RunConfig, datasets: &[Dataset]) -> Vec<IdleRow> {
    // One independent simulation per dataset — fan them over the pool.
    let configs: Vec<_> = datasets.iter().map(|&d| (d, System::SlimGnnLike)).collect();
    let runs = run_systems(&configs, config);
    let mut rows = Vec::new();
    for (&dataset, run) in datasets.iter().zip(&runs) {
        let num_forward = 2 * dataset.model().num_layers;
        for (i, stage) in run.schedule.stages.iter().take(num_forward).enumerate() {
            rows.push(IdleRow {
                dataset: dataset.name().to_string(),
                stage: format!("XBS{}", i + 1),
                kind: run.stage_names[i].clone(),
                idle_fraction: stage.idle_fraction,
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combination_crossbars_idle_far_more_than_aggregation() {
        let config = RunConfig {
            crossbar_budget: Some(200_000),
            ..RunConfig::default()
        };
        let rows = run(&config, &[Dataset::Ddi]);
        assert_eq!(rows.len(), 4); // 2-layer GCN forward pass
        let co: Vec<&IdleRow> = rows.iter().filter(|r| r.kind.starts_with("CO")).collect();
        let ag: Vec<&IdleRow> = rows.iter().filter(|r| r.kind.starts_with("AG")).collect();
        for c in &co {
            // The paper's observation: CO crossbars idle > 97 %.
            assert!(c.idle_fraction > 0.9, "{c:?}");
            for a in &ag {
                assert!(c.idle_fraction > a.idle_fraction, "{c:?} vs {a:?}");
            }
        }
    }
}
