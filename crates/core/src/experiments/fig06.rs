//! Fig. 6: the average degree of vertices mapped on each crossbar under
//! the index-based mapping strategy — wildly skewed on real orderings
//! (the paper reports 1.6–2266.8 on proteins). Also reports the
//! interleaved mapping for contrast (the paper's Fig. 11 fix).

use gopim_graph::datasets::Dataset;
use gopim_mapping::{index_based, interleaved};
use gopim_reram::spec::AcceleratorSpec;

use crate::runner::dataset_profile;
use crate::runner::RunConfig;

/// One dataset's per-crossbar degree summary.
#[derive(Debug, Clone, PartialEq)]
pub struct DegreeSpreadRow {
    /// Dataset name.
    pub dataset: String,
    /// Mapping strategy label.
    pub mapping: String,
    /// Smallest per-crossbar average degree.
    pub min_avg: f64,
    /// Largest per-crossbar average degree.
    pub max_avg: f64,
    /// Mean of the per-crossbar averages.
    pub mean_avg: f64,
}

/// Runs the Fig. 6 analysis.
pub fn run(config: &RunConfig, datasets: &[Dataset]) -> Vec<DegreeSpreadRow> {
    let capacity = AcceleratorSpec::paper().crossbar_rows;
    let mut rows = Vec::new();
    for &dataset in datasets {
        let profile = dataset_profile(dataset, config.profile_seed);
        for (label, mapping) in [
            ("index", index_based(profile.num_vertices(), capacity)),
            ("interleaved", interleaved(&profile, capacity)),
        ] {
            let s = mapping.degree_summary(&profile);
            rows.push(DegreeSpreadRow {
                dataset: dataset.name().to_string(),
                mapping: label.to_string(),
                min_avg: s.min_avg,
                max_avg: s.max_avg,
                mean_avg: s.mean_avg,
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_mapping_is_heavily_skewed_and_interleaving_fixes_it() {
        let rows = run(&RunConfig::default(), &[Dataset::Proteins]);
        let index = rows.iter().find(|r| r.mapping == "index").unwrap();
        let ivl = rows.iter().find(|r| r.mapping == "interleaved").unwrap();
        // Paper: proteins ranges 1.6–2266.8 under index mapping.
        assert!(
            index.max_avg > 100.0 * index.min_avg.max(1.0),
            "index spread {index:?}"
        );
        let spread = |r: &DegreeSpreadRow| r.max_avg - r.min_avg;
        assert!(spread(ivl) < 0.05 * spread(index), "{ivl:?} vs {index:?}");
    }
}
