//! Table VI: crossbar-allocation detail on ddi — per-stage replica and
//! crossbar counts for Serial and GoPIM.

use gopim_graph::datasets::Dataset;

use crate::runner::{run_system_cached, RunConfig};
use crate::system::System;

/// The allocation detail of one system on one dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct AllocationDetail {
    /// System name.
    pub system: String,
    /// Stage names in order (CO1, AG1, …).
    pub stage_names: Vec<String>,
    /// Replicas per stage.
    pub replicas: Vec<usize>,
    /// Crossbars per stage (replicas × footprint).
    pub crossbars: Vec<usize>,
    /// Total crossbars.
    pub total: usize,
}

/// Runs the Table VI analysis.
pub fn run(config: &RunConfig, dataset: Dataset) -> Vec<AllocationDetail> {
    [System::Serial, System::Gopim]
        .iter()
        .map(|&system| {
            let r = run_system_cached(dataset, system, config);
            let crossbars: Vec<usize> = r
                .replicas
                .iter()
                .zip(&r.footprints)
                .map(|(&rep, &fp)| rep * fp)
                .collect();
            AllocationDetail {
                system: r.system_name.clone(),
                stage_names: r.stage_names.clone(),
                total: crossbars.iter().sum(),
                replicas: r.replicas.clone(),
                crossbars,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ddi_serial_matches_table_vi_shape() {
        let config = RunConfig {
            crossbar_budget: Some(400_000),
            ..RunConfig::default()
        };
        let details = run(&config, Dataset::Ddi);
        let serial = &details[0];
        // Paper Table VI Serial: [32, 534, 32, 534, 32, 534, 32, 534],
        // total 2264; our tiling gives 536 per feature stage (2272).
        assert_eq!(serial.replicas, vec![1; 8]);
        assert_eq!(serial.crossbars, vec![32, 536, 32, 536, 32, 536, 32, 536]);
        assert!((serial.total as i64 - 2264).abs() < 16);

        let gopim = &details[1];
        // GoPIM grants far more replicas to the feature-mapped stages.
        assert!(gopim.total > 10 * serial.total);
        assert!(gopim.replicas[1] > gopim.replicas[0]);
    }
}
