//! Fig. 9: choosing the Time Predictor model.
//!
//! (a) RMSE across regressor families (MLP wins in the paper);
//! (b) MLP depth sweep, 2–6 layers (3 wins);
//! (c) hidden-width sweep on the 3-layer MLP (256 wins).

use gopim_cache::{CacheValue, CanonicalHash, CanonicalHasher, Decoder, Encoder};
use gopim_predictor::dataset_gen::SampleSet;
use gopim_predictor::eval::{rmse, split};
use gopim_predictor::models::{
    BayesianRidge, DecisionTree, GradientBoostedTrees, LinearRegression, LinearSvr, Regressor,
};
use gopim_predictor::{Normalizer, TimePredictor};

/// RMSE of one model configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct RmseRow {
    /// Model label (paper's Fig. 9 names).
    pub model: String,
    /// Test-set RMSE (normalized log-time target space).
    pub rmse: f64,
}

impl CacheValue for RmseRow {
    fn encode(&self, e: &mut Encoder) {
        e.put_str(&self.model);
        e.put_f64(self.rmse);
    }
    fn decode(d: &mut Decoder<'_>) -> Option<Self> {
        Some(RmseRow {
            model: d.take_str()?,
            rmse: d.take_f64()?,
        })
    }
}

/// Hashes the full training inputs of a Fig. 9 sweep: the sample set's
/// exact feature/target bits plus the sweep's own knobs. Training is
/// deterministic in these, so the cached rows are bitwise what a fresh
/// run would produce.
fn sweep_key(tag: &str, samples: &SampleSet, knobs: &[u64]) -> gopim_cache::CacheKey {
    let mut h = CanonicalHasher::new();
    h.write_tag(tag);
    samples.canonical_hash(&mut h);
    for &k in knobs {
        h.write_u64(k);
    }
    h.finish()
}

/// Fig. 9(a): the regressor-family comparison. Every model receives
/// z-scored features (as scikit-learn pipelines would), fitted on the
/// training split.
pub fn model_comparison(samples: &SampleSet, mlp_epochs: usize, seed: u64) -> Vec<RmseRow> {
    let key = sweep_key(
        "experiments.fig09.model_comparison/v1",
        samples,
        &[mlp_epochs as u64, seed],
    );
    gopim_cache::global().get_or_compute(key, || model_comparison_fresh(samples, mlp_epochs, seed))
}

fn model_comparison_fresh(samples: &SampleSet, mlp_epochs: usize, seed: u64) -> Vec<RmseRow> {
    let (train, test) = split(samples, 0.8, seed);
    let norm = Normalizer::fit(&train.x);
    let train_x = norm.transform(&train.x);
    let test_x = norm.transform(&test.x);
    let mut rows = Vec::new();

    let mut run_model = |model: &mut dyn Regressor| {
        model.fit(&train_x, &train.y);
        rows.push(RmseRow {
            model: model.name().to_string(),
            rmse: rmse(&model.predict(&test_x), &test.y),
        });
    };
    run_model(&mut GradientBoostedTrees::default());
    run_model(&mut LinearSvr::default());
    run_model(&mut DecisionTree::default());
    run_model(&mut LinearRegression::new());
    run_model(&mut BayesianRidge::new());

    let predictor = TimePredictor::train_paper(&train, mlp_epochs, seed);
    rows.push(RmseRow {
        model: "MLP".to_string(),
        rmse: rmse(&predictor.predict_normalized(&test.x), &test.y),
    });
    rows
}

/// §V-A's feature-selection ablation: retrain with one Table I feature
/// zeroed out at a time and report the RMSE penalty — the procedure
/// the paper used to settle on the ten features ("if the exclusion of
/// some feature causes a large drop in the predictor's accuracy, then
/// we need to keep that feature").
///
/// Returns `(feature name, RMSE with the feature removed)`; compare
/// against the full-feature RMSE from [`model_comparison`].
pub fn feature_ablation(samples: &SampleSet, epochs: usize, seed: u64) -> Vec<(String, f64)> {
    let key = sweep_key(
        "experiments.fig09.feature_ablation/v1",
        samples,
        &[epochs as u64, seed],
    );
    gopim_cache::global().get_or_compute(key, || feature_ablation_fresh(samples, epochs, seed))
}

fn feature_ablation_fresh(samples: &SampleSet, epochs: usize, seed: u64) -> Vec<(String, f64)> {
    const NAMES: [&str; 10] = [
        "R_IFM_CO", "C_IFM_CO", "R_E_CO", "C_E_CO", "R_A_AG", "C_A_AG", "R_E_AG", "C_E_AG", "s",
        "k",
    ];
    let (train, test) = split(samples, 0.8, seed);
    let zero_column = |set: &SampleSet, col: usize| -> SampleSet {
        let mut x = set.x.clone();
        for r in 0..x.rows() {
            x[(r, col)] = 0.0;
        }
        SampleSet {
            x,
            y: set.y.clone(),
        }
    };
    NAMES
        .iter()
        .enumerate()
        .map(|(col, name)| {
            let ablated_train = zero_column(&train, col);
            let ablated_test = zero_column(&test, col);
            let p = TimePredictor::train_paper(&ablated_train, epochs, seed);
            (
                name.to_string(),
                rmse(&p.predict_normalized(&ablated_test.x), &ablated_test.y),
            )
        })
        .collect()
}

/// Fig. 9(b): MLP depth sweep (total layers in the paper's counting).
pub fn depth_sweep(
    samples: &SampleSet,
    depths: &[usize],
    hidden: usize,
    epochs: usize,
    seed: u64,
) -> Vec<(usize, f64)> {
    let mut h = CanonicalHasher::new();
    h.write_tag("experiments.fig09.depth_sweep/v1");
    samples.canonical_hash(&mut h);
    depths.canonical_hash(&mut h);
    h.write_usize(hidden);
    h.write_usize(epochs);
    h.write_u64(seed);
    gopim_cache::global().get_or_compute(h.finish(), || {
        let (train, test) = split(samples, 0.8, seed);
        depths
            .iter()
            .map(|&d| {
                let p = TimePredictor::train(&train, d, hidden, epochs, seed);
                (d, rmse(&p.predict_normalized(&test.x), &test.y))
            })
            .collect()
    })
}

/// Fig. 9(c): hidden-width sweep on the 3-layer MLP.
pub fn width_sweep(
    samples: &SampleSet,
    widths: &[usize],
    epochs: usize,
    seed: u64,
) -> Vec<(usize, f64)> {
    let mut h = CanonicalHasher::new();
    h.write_tag("experiments.fig09.width_sweep/v1");
    samples.canonical_hash(&mut h);
    widths.canonical_hash(&mut h);
    h.write_usize(epochs);
    h.write_u64(seed);
    gopim_cache::global().get_or_compute(h.finish(), || {
        let (train, test) = split(samples, 0.8, seed);
        widths
            .iter()
            .map(|&w| {
                let p = TimePredictor::train(&train, 3, w, epochs, seed);
                (w, rmse(&p.predict_normalized(&test.x), &test.y))
            })
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gopim_predictor::dataset_gen::generate_samples;

    #[test]
    fn mlp_is_competitive_with_every_family() {
        let samples = generate_samples(350, 21);
        let rows = model_comparison(&samples, 60, 3);
        assert_eq!(rows.len(), 6);
        let mlp = rows.iter().find(|r| r.model == "MLP").unwrap().rmse;
        let linear = rows.iter().find(|r| r.model == "LR").unwrap().rmse;
        // The paper's ranking: the MLP beats the linear families.
        assert!(mlp < linear, "MLP {mlp} vs LR {linear}");
        assert!(rows.iter().all(|r| r.rmse.is_finite() && r.rmse >= 0.0));
    }

    #[test]
    fn feature_ablation_covers_every_feature() {
        let samples = generate_samples(150, 23);
        let rows = feature_ablation(&samples, 10, 3);
        assert_eq!(rows.len(), 10);
        assert!(rows.iter().all(|(_, r)| r.is_finite() && *r >= 0.0));
        // Removing the dominant size features must hurt more than
        // removing the layer index.
        let get = |name: &str| rows.iter().find(|(n, _)| n == name).unwrap().1;
        assert!(get("R_E_AG") >= get("k") * 0.5, "{rows:?}");
    }

    #[test]
    fn sweeps_return_requested_points() {
        let samples = generate_samples(200, 22);
        let d = depth_sweep(&samples, &[2, 3, 4], 16, 15, 4);
        assert_eq!(d.len(), 3);
        let w = width_sweep(&samples, &[8, 32], 15, 4);
        assert_eq!(w.len(), 2);
        assert!(w.iter().all(|&(_, r)| r.is_finite()));
    }
}
