//! Table V: the accuracy impact of ISU — GoPIM (adaptive θ, stale
//! period 20) vs GoPIM-Vanilla (every vertex fresh every epoch), on the
//! numeric stand-in graphs of the five headline datasets.

use gopim_cache::{CacheValue, CanonicalHash, CanonicalHasher, Decoder, Encoder};
use gopim_gcn::train::{train_gcn, TrainOptions};
use gopim_graph::datasets::Dataset;
use gopim_mapping::SelectivePolicy;

/// One dataset row of Table V.
#[derive(Debug, Clone, PartialEq)]
pub struct AccuracyRow {
    /// Dataset name.
    pub dataset: String,
    /// GoPIM-Vanilla test accuracy (mean over seeds).
    pub vanilla: f64,
    /// GoPIM (ISU) test accuracy (mean over seeds).
    pub gopim: f64,
    /// Accuracy delta (GoPIM − Vanilla), percentage points (mean).
    pub delta_pp: f64,
    /// Standard deviation of the delta across seeds, percentage points
    /// (0 for single-seed runs).
    pub delta_std_pp: f64,
    /// θ the adaptive rule chose.
    pub theta: f64,
}

impl CacheValue for AccuracyRow {
    fn encode(&self, e: &mut Encoder) {
        e.put_str(&self.dataset);
        e.put_f64(self.vanilla);
        e.put_f64(self.gopim);
        e.put_f64(self.delta_pp);
        e.put_f64(self.delta_std_pp);
        e.put_f64(self.theta);
    }
    fn decode(d: &mut Decoder<'_>) -> Option<Self> {
        Some(AccuracyRow {
            dataset: d.take_str()?,
            vanilla: d.take_f64()?,
            gopim: d.take_f64()?,
            delta_pp: d.take_f64()?,
            delta_std_pp: d.take_f64()?,
            theta: d.take_f64()?,
        })
    }
}

/// Runs the Table V comparison with one seed.
pub fn run(
    datasets: &[Dataset],
    max_vertices: usize,
    options: &TrainOptions,
    seed: u64,
) -> Vec<AccuracyRow> {
    run_multi_seed(datasets, max_vertices, options, &[seed])
}

/// Runs the Table V comparison averaged over several graph/training
/// seeds — small synthetic graphs are noisy, so the paper-style single
/// numbers deserve error bars.
///
/// # Panics
///
/// Panics if `seeds` is empty.
pub fn run_multi_seed(
    datasets: &[Dataset],
    max_vertices: usize,
    options: &TrainOptions,
    seeds: &[u64],
) -> Vec<AccuracyRow> {
    assert!(!seeds.is_empty(), "need at least one seed");
    // Training is deterministic in the graph seed and TrainOptions, so
    // the whole table is cacheable under its canonical inputs.
    let mut h = CanonicalHasher::new();
    h.write_tag("experiments.table05/v1");
    datasets.canonical_hash(&mut h);
    h.write_usize(max_vertices);
    options.canonical_hash(&mut h);
    seeds.canonical_hash(&mut h);
    gopim_cache::global().get_or_compute(h.finish(), || {
        run_multi_seed_fresh(datasets, max_vertices, options, seeds)
    })
}

fn run_multi_seed_fresh(
    datasets: &[Dataset],
    max_vertices: usize,
    options: &TrainOptions,
    seeds: &[u64],
) -> Vec<AccuracyRow> {
    // Every (dataset, seed) cell trains two GCNs from scratch —
    // independent, heavy work. Fan the cross product over the pool
    // and regroup per dataset; order is preserved so the statistics
    // match the old nested loops exactly.
    let cells: Vec<(Dataset, u64)> = datasets
        .iter()
        .flat_map(|&d| seeds.iter().map(move |&s| (d, s)))
        .collect();
    let results = gopim_par::par_map(&cells, |&(dataset, seed)| {
        let (graph, labels) = dataset.numeric_graph(max_vertices, seed);
        let profile = graph.to_degree_profile();
        let policy = SelectivePolicy::adaptive(&profile);
        let theta = policy.theta();
        let mut opts = options.clone();
        opts.seed = options.seed ^ seed;
        let vanilla = train_gcn(&graph, &labels, &opts);
        opts.selective = Some(policy);
        let gopim = train_gcn(&graph, &labels, &opts);
        (vanilla.test_accuracy, gopim.test_accuracy, theta)
    });
    datasets
        .iter()
        .zip(results.chunks(seeds.len()))
        .map(|(&dataset, cells)| {
            let vanillas: Vec<f64> = cells.iter().map(|c| c.0).collect();
            let gopims: Vec<f64> = cells.iter().map(|c| c.1).collect();
            // lint:allow(no-panic-in-lib): seeds is a non-empty compile-time constant, so every chunk is non-empty
            let theta = cells.last().expect("at least one seed").2;
            let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
            let deltas: Vec<f64> = gopims
                .iter()
                .zip(&vanillas)
                .map(|(&g, &v)| (g - v) * 100.0)
                .collect();
            let delta_mean = mean(&deltas);
            let delta_var = deltas
                .iter()
                .map(|d| (d - delta_mean) * (d - delta_mean))
                .sum::<f64>()
                / deltas.len() as f64;
            AccuracyRow {
                dataset: dataset.name().to_string(),
                vanilla: mean(&vanillas),
                gopim: mean(&gopims),
                delta_pp: delta_mean,
                delta_std_pp: delta_var.sqrt(),
                theta,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isu_accuracy_stays_close_to_vanilla() {
        let mut options = TrainOptions::quick_test();
        options.epochs = 40;
        let rows = run(&[Dataset::Ddi, Dataset::Cora], 300, &options, 5);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.vanilla > 0.28, "{r:?}"); // 7-class stand-in: well above 14% chance
                                                // The paper's Table V deltas range −0.65 to +4.01 pp; allow
                                                // a wider band for the small synthetic graphs.
            assert!(r.delta_pp.abs() < 15.0, "{r:?}");
            assert_eq!(r.delta_std_pp, 0.0); // single seed
        }
        // Adaptive θ picks the dense rule for ddi, sparse for Cora.
        assert_eq!(rows[0].theta, 0.5);
        assert_eq!(rows[1].theta, 0.8);
    }

    #[test]
    fn multi_seed_reports_spread() {
        let mut options = TrainOptions::quick_test();
        options.epochs = 25;
        let rows = run_multi_seed(&[Dataset::Ddi], 200, &options, &[1, 2, 3]);
        assert_eq!(rows.len(), 1);
        assert!(rows[0].delta_std_pp >= 0.0);
        assert!(rows[0].vanilla > 0.3, "{rows:?}");
    }
}
