//! Table VII: ML-predicted vs profiling-derived stage times feeding the
//! allocator — the paper finds the resulting speedups within 4.3 % of
//! each other, while ML avoids the profiling collection cost.

use gopim_cache::{CacheValue, CanonicalHash, CanonicalHasher, Decoder, Encoder};
use gopim_graph::datasets::Dataset;
use gopim_predictor::dataset_gen::{generate_samples, samples_from_datasets};
use gopim_predictor::TimePredictor;

use crate::runner::{run_system, run_system_cached, Estimator, RunConfig};
use crate::system::System;

/// One dataset row of Table VII.
#[derive(Debug, Clone, PartialEq)]
pub struct PredictorRow {
    /// Dataset name.
    pub dataset: String,
    /// GoPIM speedup over Serial with ML-predicted stage times.
    pub ml_speedup: f64,
    /// GoPIM speedup over Serial with exact (profiling) stage times.
    pub profiling_speedup: f64,
    /// Relative difference `|ml − prof| / prof`.
    pub relative_gap: f64,
}

impl CacheValue for PredictorRow {
    fn encode(&self, e: &mut Encoder) {
        e.put_str(&self.dataset);
        e.put_f64(self.ml_speedup);
        e.put_f64(self.profiling_speedup);
        e.put_f64(self.relative_gap);
    }
    fn decode(d: &mut Decoder<'_>) -> Option<Self> {
        Some(PredictorRow {
            dataset: d.take_str()?,
            ml_speedup: d.take_f64()?,
            profiling_speedup: d.take_f64()?,
            relative_gap: d.take_f64()?,
        })
    }
}

/// Runs the Table VII comparison. Trains one predictor on `samples`
/// randomized simulator samples *plus* the evaluation workloads' own
/// execution records — the paper's §V-A data-collection protocol — and
/// reuses it for every dataset.
///
/// The individual ML-estimator runs stay uncached (a trained predictor
/// has no canonical content hash), but the experiment as a whole is a
/// pure function of its *training inputs* — sample count, epochs, seed,
/// datasets, config — so the finished table is cached under those. A
/// caller-supplied `Estimator::Ml` config bypasses the cache entirely.
pub fn run(
    config: &RunConfig,
    datasets: &[Dataset],
    samples: usize,
    train_epochs: usize,
    seed: u64,
) -> Vec<PredictorRow> {
    if matches!(config.estimator, Estimator::Ml(_)) {
        return run_fresh(config, datasets, samples, train_epochs, seed);
    }
    let mut h = CanonicalHasher::new();
    h.write_tag("experiments.table07/v1");
    config.canonical_hash(&mut h);
    datasets.canonical_hash(&mut h);
    h.write_usize(samples);
    h.write_usize(train_epochs);
    h.write_u64(seed);
    gopim_pipeline::latency::LatencyParams::paper().canonical_hash(&mut h);
    gopim_cache::global().get_or_compute(h.finish(), || {
        run_fresh(config, datasets, samples, train_epochs, seed)
    })
}

fn run_fresh(
    config: &RunConfig,
    datasets: &[Dataset],
    samples: usize,
    train_epochs: usize,
    seed: u64,
) -> Vec<PredictorRow> {
    let data = generate_samples(samples, seed)
        .concat(&samples_from_datasets(datasets, config.profile_seed));
    let predictor = TimePredictor::train_paper(&data, train_epochs, seed);
    datasets
        .iter()
        .map(|&dataset| {
            let serial = run_system_cached(dataset, System::Serial, config);
            let prof = run_system_cached(dataset, System::Gopim, config);
            let ml_config = RunConfig {
                estimator: Estimator::Ml(predictor.clone()),
                ..config.clone()
            };
            let ml = run_system(dataset, System::Gopim, &ml_config);
            let profiling_speedup = serial.makespan_ns / prof.makespan_ns;
            let ml_speedup = serial.makespan_ns / ml.makespan_ns;
            PredictorRow {
                dataset: dataset.name().to_string(),
                ml_speedup,
                profiling_speedup,
                relative_gap: (ml_speedup - profiling_speedup).abs() / profiling_speedup,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ml_allocation_is_close_to_profiling_allocation() {
        let config = RunConfig {
            crossbar_budget: Some(400_000),
            ..RunConfig::default()
        };
        // Debug builds train a smaller predictor to keep `cargo test`
        // fast; the release path uses the fuller configuration.
        let (samples, epochs) = if cfg!(debug_assertions) {
            (250, 30)
        } else {
            (900, 120)
        };
        let rows = run(&config, &[Dataset::Ddi], samples, epochs, 7);
        let r = &rows[0];
        assert!(r.profiling_speedup > 10.0, "{r:?}");
        // The paper reports ≤ 4.3 % gap; allow more slack for the small
        // training set used in tests.
        assert!(r.relative_gap < 0.35, "{r:?}");
    }
}
