//! Fig. 17: scalability.
//!
//! (a) GoPIM speedup as the vertex-feature dimension grows 256→2048 —
//! speedups persist but taper because bigger replicas leave less room
//! for the ML-based allocation;
//! (b) the largest dataset (products): the paper reports 5.9× speedup
//! and 1.8× energy saving over Serial.

use gopim_graph::datasets::{Dataset, ModelConfig};
use gopim_graph::generate::power_law_profile;
use gopim_mapping::SelectivePolicy;
use gopim_pipeline::latency::LatencyParams;
use gopim_pipeline::{GcnWorkload, MappingKind, WorkloadOptions};

use crate::runner::{run_system_cached, RunConfig};
use crate::system::System;

/// One point of the feature-dimension sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct DimensionRow {
    /// Vertex feature dimension.
    pub dimension: usize,
    /// GoPIM speedup over Serial.
    pub speedup: f64,
}

/// Runs the Fig. 17(a) dimension sweep on a ddi-like graph.
pub fn dimension_sweep(config: &RunConfig, dims: &[usize]) -> Vec<DimensionRow> {
    let stats = Dataset::Ddi.stats();
    dims.iter()
        .map(|&dim| {
            let profile = power_law_profile(
                stats.num_vertices,
                stats.avg_degree,
                0.35,
                0.92,
                config.profile_seed,
            );
            let model = ModelConfig {
                num_layers: 2,
                learning_rate: 0.005,
                dropout: 0.5,
                input_channels: dim,
                hidden_channels: dim,
                output_channels: dim,
            };
            let speedup = run_custom(config, &profile, &model);
            DimensionRow {
                dimension: dim,
                speedup,
            }
        })
        .collect()
}

/// Builds and runs Serial vs GoPIM on a custom (profile, model) pair,
/// returning the speedup.
fn run_custom(
    config: &RunConfig,
    profile: &gopim_graph::DegreeProfile,
    model: &ModelConfig,
) -> f64 {
    use gopim_alloc::{greedy_allocate, AllocPlan};
    use gopim_pipeline::energy::energy_of_run;
    use gopim_pipeline::{simulate, PipelineOptions};
    use gopim_reram::spec::AcceleratorSpec;

    let build = |system: System| -> GcnWorkload {
        let options = WorkloadOptions {
            micro_batch: config.micro_batch,
            mapping: if system == System::Gopim {
                MappingKind::Interleaved
            } else {
                MappingKind::IndexBased
            },
            selective: (system == System::Gopim).then(|| SelectivePolicy::adaptive(profile)),
            accounting: gopim_pipeline::workload::UpdateAccounting::Amortized,
            params: LatencyParams::paper(),
            repeated_load_rows_per_edge: 0.0,
            profile_seed: config.profile_seed,
        };
        GcnWorkload::build_custom("custom", profile, model, &options)
    };
    let spec = AcceleratorSpec::paper();
    let total = config
        .crossbar_budget
        .unwrap_or_else(|| spec.total_crossbars());

    // Serial.
    let serial_wl = build(System::Serial);
    let serial_plan = AllocPlan::serial(serial_wl.stages().len());
    let serial = simulate(
        &serial_wl,
        &serial_plan.replicas,
        &PipelineOptions::serial(),
    );

    // GoPIM.
    let wl = build(System::Gopim);
    let budget = total.saturating_sub(wl.base_crossbars());
    let n_mb = wl.num_microbatches();
    let mean_writes: Vec<f64> = (0..wl.stages().len())
        .map(|i| (0..n_mb).map(|j| wl.write_ns(i, j)).sum::<f64>() / n_mb as f64 + wl.overhead_ns())
        .collect();
    let input = gopim_alloc::AllocInput {
        compute_ns: wl.stages().iter().map(|s| s.compute_ns).collect(),
        write_ns: mean_writes,
        quantum_ns: vec![spec.mvm_latency_ns(); wl.stages().len()],
        crossbars_per_replica: wl
            .stages()
            .iter()
            .map(|s| s.crossbars_per_replica)
            .collect(),
        unused_crossbars: budget,
        num_microbatches: n_mb,
        max_replicas: None,
    };
    let plan = greedy_allocate(&input);
    let gopim = simulate(&wl, &plan.replicas, &PipelineOptions::default());
    let _ = energy_of_run(&spec, &wl, &plan.replicas, &gopim, 1);
    serial.makespan_ns / gopim.makespan_ns
}

/// One point of the chip-budget sweep (extension of §VII-F's remedy:
/// "it can be addressed by augmenting the crossbar resources").
#[derive(Debug, Clone, PartialEq)]
pub struct BudgetRow {
    /// Crossbar budget in multiples of the paper's 16 GB chip.
    pub chips: f64,
    /// GoPIM speedup over Serial at that budget.
    pub speedup: f64,
}

/// Sweeps the crossbar budget on a dataset: more chips ⇒ more replica
/// room ⇒ the big-graph speedup recovers.
pub fn budget_sweep(config: &RunConfig, dataset: Dataset, chips: &[f64]) -> Vec<BudgetRow> {
    use gopim_reram::spec::AcceleratorSpec;
    let one_chip = AcceleratorSpec::paper().total_crossbars();
    // The dataset profile is shared through the runner's profile memo,
    // so every budget point reuses one Arc'd profile and workload; the
    // per-point results go through the run cache.
    chips
        .iter()
        .map(|&c| {
            let cfg = RunConfig {
                crossbar_budget: Some((c * one_chip as f64) as usize),
                ..config.clone()
            };
            let serial = run_system_cached(dataset, System::Serial, &cfg);
            let gopim = run_system_cached(dataset, System::Gopim, &cfg);
            BudgetRow {
                chips: c,
                speedup: serial.makespan_ns / gopim.makespan_ns,
            }
        })
        .collect()
}

/// Fig. 17(b): the products run.
#[derive(Debug, Clone, PartialEq)]
pub struct ProductsRow {
    /// System name.
    pub system: String,
    /// Speedup over Serial.
    pub speedup: f64,
    /// Energy saving over Serial.
    pub energy_saving: f64,
}

/// Runs Serial vs GoPIM on the full-size products dataset.
pub fn products_run(config: &RunConfig) -> Vec<ProductsRow> {
    // The big-graph case is where the cache pays most: a warm re-run
    // (disk tier) skips the multi-million-vertex profile and workload
    // builds entirely.
    let serial = run_system_cached(Dataset::Products, System::Serial, config);
    let gopim = run_system_cached(Dataset::Products, System::Gopim, config);
    vec![
        ProductsRow {
            system: "Serial".into(),
            speedup: 1.0,
            energy_saving: 1.0,
        },
        ProductsRow {
            system: "GoPIM".into(),
            speedup: serial.makespan_ns / gopim.makespan_ns,
            energy_saving: serial.energy_nj() / gopim.energy_nj(),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedups_taper_as_dimensions_grow() {
        let config = RunConfig {
            crossbar_budget: Some(400_000),
            ..RunConfig::default()
        };
        let rows = dimension_sweep(&config, &[256, 1024]);
        assert!(rows.iter().all(|r| r.speedup > 1.0), "{rows:?}");
        assert!(rows[1].speedup < rows[0].speedup, "tapering: {rows:?}");
    }
}
