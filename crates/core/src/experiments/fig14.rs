//! Fig. 14: the ablation — `Serial → +PP → +ISU → GoPIM`, execution
//! time (a) and energy (b), normalized to `Serial`.

use gopim_graph::datasets::Dataset;

use crate::runner::{run_ablation_cached, RunConfig};
use crate::system::Ablation;

/// One (dataset, variant) cell of Fig. 14.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationRow {
    /// Dataset name.
    pub dataset: String,
    /// Variant name (`Serial`, `+PP`, `+ISU`, `GoPIM`).
    pub variant: String,
    /// Speedup over `Serial`.
    pub speedup: f64,
    /// Energy reduction vs `Serial` (fraction saved, the paper's
    /// "up to 79 %" quantity).
    pub energy_reduction: f64,
    /// Raw makespan, ns.
    pub makespan_ns: f64,
}

/// Runs the ablation over the given datasets.
pub fn run(config: &RunConfig, datasets: &[Dataset]) -> Vec<AblationRow> {
    // Every (dataset, variant) cell is an independent simulation; fan
    // the whole cross product over the pool and regroup per dataset.
    let cells: Vec<(Dataset, Ablation)> = datasets
        .iter()
        .flat_map(|&d| Ablation::ALL.iter().map(move |&v| (d, v)))
        .collect();
    let all_runs = gopim_par::par_map(&cells, |&(d, v)| run_ablation_cached(d, v, config));
    let mut rows = Vec::new();
    for (&dataset, runs) in datasets.iter().zip(all_runs.chunks(Ablation::ALL.len())) {
        let serial_time = runs[0].makespan_ns;
        let serial_energy = runs[0].energy_nj();
        for r in runs {
            rows.push(AblationRow {
                dataset: dataset.name().to_string(),
                variant: r.system_name.clone(),
                speedup: serial_time / r.makespan_ns,
                energy_reduction: 1.0 - r.energy_nj() / serial_energy,
                makespan_ns: r.makespan_ns,
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn each_technique_adds_speedup() {
        let config = RunConfig {
            crossbar_budget: Some(400_000),
            ..RunConfig::default()
        };
        let rows = run(&config, &[Dataset::Ddi]);
        assert_eq!(rows.len(), 4);
        let s = |v: &str| rows.iter().find(|r| r.variant == v).unwrap().speedup;
        assert!((s("Serial") - 1.0).abs() < 1e-9);
        assert!(s("+PP") > 1.5, "+PP {}", s("+PP"));
        assert!(
            s("+ISU") >= s("+PP"),
            "+ISU {} vs +PP {}",
            s("+ISU"),
            s("+PP")
        );
        assert!(s("GoPIM") > 10.0 * s("+ISU"), "GoPIM {}", s("GoPIM"));
        // Energy reductions are positive for the pipeline variants.
        assert!(rows
            .iter()
            .filter(|r| r.variant != "Serial")
            .all(|r| r.energy_reduction > 0.0));
    }
}
