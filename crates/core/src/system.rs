//! The evaluated accelerator systems (paper §VII-A "Baselines").

use std::fmt;

/// One of the six systems compared throughout the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum System {
    /// Sequential execution: no pipeline, no sparsification, one
    /// replica per stage.
    Serial,
    /// SlimGNN without weight pruning: intra-batch pipeline,
    /// space-proportional replica allocation, input subgraph pruning
    /// with index-based mapping.
    SlimGnnLike,
    /// ReGraphX: intra-batch pipeline, fixed 1:2 CO:AG crossbar split,
    /// no sparsification.
    ReGraphX,
    /// ReFlip: replicas only in Combination phases, hybrid execution
    /// with repeated source-vertex loading, no sparsification.
    ReFlip,
    /// GoPIM without ISU: ML-allocated replicas + intra- and
    /// inter-batch pipelining, full vertex updating, index mapping.
    GopimVanilla,
    /// Full GoPIM: ML allocation + interleaved mapping with adaptive
    /// selective updating.
    Gopim,
}

impl System {
    /// All systems in the paper's Fig. 13 order.
    pub const ALL: [System; 6] = [
        System::Serial,
        System::SlimGnnLike,
        System::ReGraphX,
        System::ReFlip,
        System::GopimVanilla,
        System::Gopim,
    ];

    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            System::Serial => "Serial",
            System::SlimGnnLike => "SlimGNN-like",
            System::ReGraphX => "ReGraphX",
            System::ReFlip => "ReFlip",
            System::GopimVanilla => "GoPIM-Vanilla",
            System::Gopim => "GoPIM",
        }
    }

    /// Whether the system uses any pipelining.
    pub fn pipelined(self) -> bool {
        !matches!(self, System::Serial)
    }

    /// Whether the system overlaps batches (inter-batch pipelining) —
    /// only the GoPIM variants do (§VII-B).
    pub fn inter_batch(self) -> bool {
        matches!(self, System::GopimVanilla | System::Gopim)
    }
}

impl fmt::Display for System {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The ablation variants of Fig. 14.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Ablation {
    /// Plain sequential accelerator.
    Serial,
    /// + intra- and inter-batch pipelining, no replicas.
    PlusPp,
    /// + interleaved mapping with selective updating.
    PlusIsu,
    /// Full GoPIM (adds ML-based replica allocation).
    Full,
}

impl Ablation {
    /// All variants in Fig. 14 order.
    pub const ALL: [Ablation; 4] = [
        Ablation::Serial,
        Ablation::PlusPp,
        Ablation::PlusIsu,
        Ablation::Full,
    ];

    /// Display name matching Fig. 14.
    pub fn name(self) -> &'static str {
        match self {
            Ablation::Serial => "Serial",
            Ablation::PlusPp => "+PP",
            Ablation::PlusIsu => "+ISU",
            Ablation::Full => "GoPIM",
        }
    }
}

impl fmt::Display for Ablation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl gopim_cache::CanonicalHash for System {
    fn canonical_hash(&self, h: &mut gopim_cache::CanonicalHasher) {
        h.write_tag("core.system/v1");
        h.write_str(self.name());
    }
}

impl gopim_cache::CanonicalHash for Ablation {
    fn canonical_hash(&self, h: &mut gopim_cache::CanonicalHasher) {
        h.write_tag("core.ablation/v1");
        h.write_str(self.name());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_paper_labels() {
        assert_eq!(System::SlimGnnLike.name(), "SlimGNN-like");
        assert_eq!(System::Gopim.to_string(), "GoPIM");
        assert_eq!(Ablation::PlusPp.name(), "+PP");
    }

    #[test]
    fn only_gopim_variants_overlap_batches() {
        assert!(System::Gopim.inter_batch());
        assert!(System::GopimVanilla.inter_batch());
        assert!(!System::ReGraphX.inter_batch());
        assert!(!System::Serial.pipelined());
    }

    #[test]
    fn all_lists_are_complete() {
        assert_eq!(System::ALL.len(), 6);
        assert_eq!(Ablation::ALL.len(), 4);
    }
}
