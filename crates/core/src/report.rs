//! Plain-text table formatting for the experiment binaries.

/// Renders a table with a header row, column-aligned.
///
/// # Panics
///
/// Panics if any row's length differs from the header's.
pub fn table(header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    for row in rows {
        assert_eq!(row.len(), cols, "row width must match header");
    }
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: Vec<&str>, widths: &[usize]| -> String {
        let mut line = String::from("|");
        for (cell, w) in cells.iter().zip(widths) {
            line.push_str(&format!(" {cell:<w$} |"));
        }
        line.push('\n');
        line
    };
    out.push_str(&fmt_row(header.to_vec(), &widths));
    out.push('|');
    for w in &widths {
        out.push_str(&format!("{}|", "-".repeat(w + 2)));
    }
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row.iter().map(String::as_str).collect(), &widths));
    }
    out
}

/// Formats a speedup like the paper (`123.4x`).
pub fn speedup(value: f64) -> String {
    if value >= 100.0 {
        format!("{value:.0}x")
    } else {
        format!("{value:.1}x")
    }
}

/// Formats nanoseconds human-readably.
pub fn time_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2} us", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Formats a percentage.
pub fn percent(fraction: f64) -> String {
    format!("{:.2}%", fraction * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = table(
            &["name", "v"],
            &[
                vec!["a".into(), "1".into()],
                vec!["longer".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
        assert!(lines[3].contains("longer"));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(speedup(3454.3), "3454x");
        assert_eq!(speedup(2.13), "2.1x");
        assert_eq!(time_ns(1.5e9), "1.50 s");
        assert_eq!(time_ns(2500.0), "2.50 us");
        assert_eq!(percent(0.985), "98.50%");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn ragged_rows_rejected() {
        table(&["a", "b"], &[vec!["x".into()]]);
    }
}
