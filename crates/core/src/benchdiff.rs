//! Statistical comparison of benchmark record files — the engine
//! behind `gopim bench-diff`.
//!
//! Reads the two record shapes the repo produces:
//!
//! - **JSON-lines** appended by the testkit bench runner
//!   (`GOPIM_BENCH_JSON=<path>`), one compact object per line;
//! - **results documents** (`BENCH_pr*.json`): a pretty-printed
//!   object with a `note` and a `results` array whose entries carry
//!   an optional `phase` tag.
//!
//! The comparison is a median ± MAD overlap test. Each record's
//! standard error is estimated as `1.4826 · MAD / √samples` (the MAD
//! is a consistent estimator of σ at that scale for normal noise);
//! two records differ significantly when the median gap exceeds
//! `z · √(se_a² + se_b²)` *and* a relative floor (`min_rel`) that
//! guards against statistically-significant-but-tiny deltas. Ratchet
//! mode adds a tolerance band on top: a regression must also exceed
//! `old · (1 + tolerance)`, absorbing machine-to-machine wall-clock
//! drift against a committed baseline.

use std::collections::BTreeMap;

use gopim_obs::export::{escape_json, parse_json, Json};

use crate::report;

/// MAD → σ scale factor for normally distributed noise.
const MAD_TO_SIGMA: f64 = 1.4826;

/// One benchmark measurement, normalized from either input shape.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// `group/name` identifier.
    pub id: String,
    /// Bench group — explicit `"group"` field when present (new
    /// records), else the `id` prefix.
    pub group: String,
    /// Optional phase tag (`before`, `after-t1`, …) from trajectory
    /// documents.
    pub phase: Option<String>,
    /// Median ns/iter.
    pub median_ns: f64,
    /// Median absolute deviation of the per-sample ns/iter values.
    pub mad_ns: f64,
    /// Timed samples behind the median (weights the overlap test).
    pub samples: u64,
}

impl BenchRecord {
    fn from_json(obj: &Json) -> Result<BenchRecord, String> {
        let id = obj
            .get("id")
            .and_then(Json::as_str)
            .ok_or("record missing string 'id'")?
            .to_string();
        let median_ns = obj
            .get("median_ns")
            .and_then(Json::as_num)
            .ok_or_else(|| format!("record '{id}' missing numeric 'median_ns'"))?;
        let group = obj
            .get("group")
            .and_then(Json::as_str)
            .map(str::to_string)
            .unwrap_or_else(|| id.split('/').next().unwrap_or("").to_string());
        Ok(BenchRecord {
            group,
            phase: obj.get("phase").and_then(Json::as_str).map(str::to_string),
            median_ns,
            mad_ns: obj.get("mad_ns").and_then(Json::as_num).unwrap_or(0.0),
            samples: obj
                .get("samples")
                .and_then(Json::as_num)
                .map_or(1, |s| s.max(1.0) as u64),
            id,
        })
    }

    /// Standard error of the median estimated from MAD and sample
    /// count.
    pub fn std_error_ns(&self) -> f64 {
        MAD_TO_SIGMA * self.mad_ns / (self.samples.max(1) as f64).sqrt()
    }
}

/// Parses a bench record file in any of the supported shapes
/// (results document, bare array, single object, or JSON-lines).
///
/// # Errors
///
/// Returns a description of the first malformed record.
pub fn parse_records(text: &str) -> Result<Vec<BenchRecord>, String> {
    if let Ok(doc) = parse_json(text) {
        let items: &[Json] = match &doc {
            Json::Obj(_) if doc.get("results").is_some() => doc
                .get("results")
                .and_then(Json::as_arr)
                .ok_or("'results' is not an array")?,
            Json::Arr(items) => items,
            Json::Obj(_) => std::slice::from_ref(&doc),
            _ => return Err("not a bench record document".to_string()),
        };
        return items.iter().map(BenchRecord::from_json).collect();
    }
    // JSON-lines: one compact record per non-empty line.
    let mut records = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let obj = parse_json(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        records
            .push(BenchRecord::from_json(&obj).map_err(|e| format!("line {}: {e}", lineno + 1))?);
    }
    if records.is_empty() {
        return Err("no bench records found".to_string());
    }
    Ok(records)
}

/// Reduces records to one per id — the **last** occurrence in file
/// order (re-runs append, so the last record is the freshest; in
/// phased trajectory documents it is the final phase). An explicit
/// `phase` filter selects that phase instead.
pub fn latest_by_id(records: &[BenchRecord], phase: Option<&str>) -> BTreeMap<String, BenchRecord> {
    let mut map = BTreeMap::new();
    for r in records {
        if let Some(want) = phase {
            if r.phase.as_deref() != Some(want) {
                continue;
            }
        }
        map.insert(r.id.clone(), r.clone());
    }
    map
}

/// Knobs of the overlap test.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffOptions {
    /// Relative-change floor below which a delta is never significant.
    pub min_rel: f64,
    /// z-score multiplier on the combined standard error.
    pub z: f64,
    /// Ratchet tolerance band: when set, a regression (improvement)
    /// must also move beyond `old · (1 ± tolerance)`.
    pub tolerance: Option<f64>,
}

impl Default for DiffOptions {
    fn default() -> Self {
        DiffOptions {
            min_rel: 0.03,
            z: 2.0,
            tolerance: None,
        }
    }
}

/// Classification of one compared id.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Significantly slower (and past the tolerance band, if any).
    Regression,
    /// Significantly faster.
    Improvement,
    /// Within noise (or inside the tolerance band).
    Neutral,
    /// Present only in the old file.
    OnlyOld,
    /// Present only in the new file.
    OnlyNew,
}

impl Verdict {
    /// The stable lowercase tag used in both output formats.
    pub fn as_str(self) -> &'static str {
        match self {
            Verdict::Regression => "regression",
            Verdict::Improvement => "improvement",
            Verdict::Neutral => "neutral",
            Verdict::OnlyOld => "only-old",
            Verdict::OnlyNew => "only-new",
        }
    }
}

/// One row of a diff report.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffRow {
    /// Benchmark id.
    pub id: String,
    /// Old median ns (absent for [`Verdict::OnlyNew`]).
    pub old_ns: Option<f64>,
    /// New median ns (absent for [`Verdict::OnlyOld`]).
    pub new_ns: Option<f64>,
    /// Relative change `(new − old) / old`, matched rows only.
    pub delta_rel: Option<f64>,
    /// The noise threshold the delta was tested against, as a
    /// fraction of the old median.
    pub noise_rel: Option<f64>,
    /// Classification.
    pub verdict: Verdict,
}

/// A full comparison: one row per id in either input.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffReport {
    /// Rows, sorted by id.
    pub rows: Vec<DiffRow>,
    /// The options the classification used.
    pub options: DiffOptions,
}

fn classify(old: &BenchRecord, new: &BenchRecord, opts: &DiffOptions) -> (Verdict, f64, f64) {
    let delta = new.median_ns - old.median_ns;
    let rel = if old.median_ns > 0.0 {
        delta / old.median_ns
    } else {
        0.0
    };
    let noise_ns = opts.z * new.std_error_ns().hypot(old.std_error_ns());
    let noise_rel = if old.median_ns > 0.0 {
        noise_ns / old.median_ns
    } else {
        0.0
    };
    let significant = delta.abs() > noise_ns && rel.abs() >= opts.min_rel;
    let verdict = if !significant {
        Verdict::Neutral
    } else {
        match opts.tolerance {
            None if delta > 0.0 => Verdict::Regression,
            None => Verdict::Improvement,
            Some(tol) if new.median_ns > old.median_ns * (1.0 + tol) => Verdict::Regression,
            Some(tol) if new.median_ns < old.median_ns / (1.0 + tol) => Verdict::Improvement,
            Some(_) => Verdict::Neutral,
        }
    };
    (verdict, rel, noise_rel)
}

/// Compares two id→record maps.
pub fn diff(
    old: &BTreeMap<String, BenchRecord>,
    new: &BTreeMap<String, BenchRecord>,
    options: DiffOptions,
) -> DiffReport {
    let mut ids: Vec<&String> = old.keys().chain(new.keys()).collect();
    ids.sort();
    ids.dedup();
    let rows = ids
        .into_iter()
        .map(|id| match (old.get(id), new.get(id)) {
            (Some(a), Some(b)) => {
                let (verdict, rel, noise_rel) = classify(a, b, &options);
                DiffRow {
                    id: id.clone(),
                    old_ns: Some(a.median_ns),
                    new_ns: Some(b.median_ns),
                    delta_rel: Some(rel),
                    noise_rel: Some(noise_rel),
                    verdict,
                }
            }
            (Some(a), None) => DiffRow {
                id: id.clone(),
                old_ns: Some(a.median_ns),
                new_ns: None,
                delta_rel: None,
                noise_rel: None,
                verdict: Verdict::OnlyOld,
            },
            (None, b) => DiffRow {
                id: id.clone(),
                old_ns: None,
                new_ns: b.map(|b| b.median_ns),
                delta_rel: None,
                noise_rel: None,
                verdict: Verdict::OnlyNew,
            },
        })
        .collect();
    DiffReport { rows, options }
}

impl DiffReport {
    /// Rows classified as regressions.
    pub fn regressions(&self) -> usize {
        self.count(Verdict::Regression)
    }

    fn count(&self, v: Verdict) -> usize {
        self.rows.iter().filter(|r| r.verdict == v).count()
    }

    /// Renders the classified comparison table plus a summary line.
    pub fn render_human(&self) -> String {
        let fmt_opt = |v: Option<f64>| v.map_or("-".to_string(), report::time_ns);
        let fmt_pct = |v: Option<f64>| v.map_or("-".to_string(), |r| format!("{:+.1}%", r * 100.0));
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.id.clone(),
                    fmt_opt(r.old_ns),
                    fmt_opt(r.new_ns),
                    fmt_pct(r.delta_rel),
                    r.noise_rel
                        .map_or("-".to_string(), |n| format!("±{:.1}%", n * 100.0)),
                    r.verdict.as_str().to_string(),
                ]
            })
            .collect();
        let tolerance = self
            .options
            .tolerance
            .map_or("off".to_string(), |t| format!("{:.0}%", t * 100.0));
        format!(
            "{}bench-diff: {} id(s) — {} regression(s), {} improvement(s), {} neutral, \
             {} only-old, {} only-new (z={}, min_rel={:.0}%, tolerance={tolerance})\n",
            report::table(&["id", "old", "new", "delta", "noise", "verdict"], &rows),
            self.rows.len(),
            self.regressions(),
            self.count(Verdict::Improvement),
            self.count(Verdict::Neutral),
            self.count(Verdict::OnlyOld),
            self.count(Verdict::OnlyNew),
            self.options.z,
            self.options.min_rel * 100.0,
        )
    }

    /// Renders the machine-readable report
    /// (schema `gopim.bench_diff/v1`, parseable by the in-repo
    /// parser).
    pub fn render_json(&self) -> String {
        let num = |v: Option<f64>| v.map_or("null".to_string(), |n| format!("{n:.3}"));
        let mut out = format!(
            "{{\"schema\":\"gopim.bench_diff/v1\",\"regressions\":{},\"improvements\":{},\
             \"neutral\":{},\"only_old\":{},\"only_new\":{},\"rows\":[",
            self.regressions(),
            self.count(Verdict::Improvement),
            self.count(Verdict::Neutral),
            self.count(Verdict::OnlyOld),
            self.count(Verdict::OnlyNew),
        );
        for (i, r) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"id\":\"{}\",\"old_ns\":{},\"new_ns\":{},\"delta_rel\":{},\
                 \"noise_rel\":{},\"verdict\":\"{}\"}}",
                escape_json(&r.id),
                num(r.old_ns),
                num(r.new_ns),
                num(r.delta_rel),
                num(r.noise_rel),
                r.verdict.as_str(),
            ));
        }
        out.push_str("]}\n");
        out
    }
}

/// Renders a trajectory table over several record files: one row per
/// id, one column per file (e.g. `BENCH_pr2.json … BENCH_pr7.json`),
/// with the latest record per id in each file. Ids absent from a file
/// show `-` — across the PR sequence most benchmarks exist only in
/// the PRs that touched them, and the table makes that visible.
///
/// # Errors
///
/// Returns the first file's parse failure, labeled.
pub fn trajectory(files: &[(String, String)]) -> Result<String, String> {
    let mut columns = Vec::new();
    for (label, text) in files {
        let records = parse_records(text).map_err(|e| format!("{label}: {e}"))?;
        columns.push((label.as_str(), latest_by_id(&records, None)));
    }
    let mut ids: Vec<&String> = columns.iter().flat_map(|(_, m)| m.keys()).collect();
    ids.sort();
    ids.dedup();
    let mut header: Vec<&str> = vec!["id"];
    header.extend(columns.iter().map(|(label, _)| *label));
    let rows: Vec<Vec<String>> = ids
        .iter()
        .map(|id| {
            let mut row = vec![(*id).clone()];
            row.extend(columns.iter().map(|(_, m)| {
                m.get(*id)
                    .map_or("-".to_string(), |r| report::time_ns(r.median_ns))
            }));
            row
        })
        .collect();
    Ok(format!(
        "{}trajectory: {} id(s) across {} file(s)\n",
        report::table(&header, &rows),
        ids.len(),
        columns.len(),
    ))
}

/// Parsed `gopim bench-diff` command line.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchDiffArgs {
    /// Input files, in order.
    pub files: Vec<String>,
    /// Emit JSON instead of the table.
    pub json: bool,
    /// Phase filter applied to both inputs.
    pub phase: Option<String>,
    /// Trajectory mode (≥ 2 files, one column each).
    pub trajectory: bool,
    /// Ratchet mode: apply a tolerance band and signal failure on
    /// regressions.
    pub ratchet: bool,
    /// Explicit tolerance override.
    pub tolerance: Option<f64>,
}

/// Ratchet tolerance applied when `--ratchet` is given without an
/// explicit `--tolerance`. Generous because the committed baseline
/// and the verifying machine are rarely the same hardware.
pub const DEFAULT_RATCHET_TOLERANCE: f64 = 0.35;

impl BenchDiffArgs {
    /// Parses the argument list after the `bench-diff` word.
    ///
    /// # Errors
    ///
    /// Returns a usage message on unknown flags, missing flag values,
    /// or a file count that does not fit the mode.
    pub fn parse(args: &[String]) -> Result<BenchDiffArgs, String> {
        let mut parsed = BenchDiffArgs {
            files: Vec::new(),
            json: false,
            phase: None,
            trajectory: false,
            ratchet: false,
            tolerance: None,
        };
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--json" => parsed.json = true,
                "--trajectory" => parsed.trajectory = true,
                "--ratchet" => parsed.ratchet = true,
                "--phase" => {
                    parsed.phase = Some(
                        it.next()
                            .ok_or("bench-diff: --phase needs a value")?
                            .clone(),
                    );
                }
                "--tolerance" => {
                    let raw = it.next().ok_or("bench-diff: --tolerance needs a value")?;
                    let tol: f64 = raw
                        .parse()
                        .map_err(|_| format!("bench-diff: bad tolerance '{raw}'"))?;
                    if !(0.0..10.0).contains(&tol) {
                        return Err(format!("bench-diff: tolerance {tol} out of [0, 10)"));
                    }
                    parsed.tolerance = Some(tol);
                }
                flag if flag.starts_with("--") => {
                    return Err(format!("bench-diff: unknown flag '{flag}'"));
                }
                file => parsed.files.push(file.to_string()),
            }
        }
        if parsed.trajectory {
            if parsed.files.len() < 2 {
                return Err("bench-diff: --trajectory needs at least two files".to_string());
            }
        } else if parsed.files.len() != 2 {
            return Err("bench-diff needs exactly two files: <old.json> <new.json>".to_string());
        }
        Ok(parsed)
    }

    /// The [`DiffOptions`] this invocation implies.
    pub fn options(&self) -> DiffOptions {
        DiffOptions {
            tolerance: self
                .tolerance
                .or(self.ratchet.then_some(DEFAULT_RATCHET_TOLERANCE)),
            ..DiffOptions::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: &str, median: f64, mad: f64, samples: u64) -> BenchRecord {
        BenchRecord {
            id: id.to_string(),
            group: id.split('/').next().unwrap_or("").to_string(),
            phase: None,
            median_ns: median,
            mad_ns: mad,
            samples,
        }
    }

    fn map(records: &[BenchRecord]) -> BTreeMap<String, BenchRecord> {
        latest_by_id(records, None)
    }

    #[test]
    fn parses_json_lines_and_results_documents() {
        let lines = "{\"id\":\"g/a\",\"group\":\"g\",\"median_ns\":10.0,\"mad_ns\":1.0,\
                     \"samples\":15,\"iters_per_sample\":3}\n\
                     {\"id\":\"g/b\",\"median_ns\":20.0}\n";
        let records = parse_records(lines).expect("json-lines parse");
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].group, "g");
        assert_eq!(records[1].group, "g", "group falls back to the id prefix");
        assert_eq!(records[1].samples, 1, "missing samples default to 1");

        let doc = r#"{"note": "x", "results": [
            {"id": "g/a", "median_ns": 5.0, "mad_ns": 0.1, "samples": 15, "phase": "before"},
            {"id": "g/a", "median_ns": 4.0, "mad_ns": 0.1, "samples": 15, "phase": "after"}
        ]}"#;
        let records = parse_records(doc).expect("results doc parse");
        assert_eq!(records.len(), 2);
        assert_eq!(records[1].phase.as_deref(), Some("after"));
        let latest = latest_by_id(&records, None);
        assert_eq!(latest["g/a"].median_ns, 4.0, "last record wins");
        let before = latest_by_id(&records, Some("before"));
        assert_eq!(before["g/a"].median_ns, 5.0, "phase filter selects");
        assert!(parse_records("").is_err());
        assert!(parse_records("not json at all {{{").is_err());
    }

    #[test]
    fn overlap_test_classifies_regressions_and_improvements() {
        // Tight measurements, 50% slower: clear regression.
        let old = map(&[rec("g/a", 100.0, 1.0, 15)]);
        let new = map(&[rec("g/a", 150.0, 1.0, 15)]);
        let report = diff(&old, &new, DiffOptions::default());
        assert_eq!(report.rows[0].verdict, Verdict::Regression);
        assert_eq!(report.regressions(), 1);

        // Same medians: neutral.
        let report = diff(&old, &old, DiffOptions::default());
        assert_eq!(report.rows[0].verdict, Verdict::Neutral);

        // Faster: improvement.
        let report = diff(&new, &old, DiffOptions::default());
        assert_eq!(report.rows[0].verdict, Verdict::Improvement);

        // Large delta but huge MAD: the noise threshold absorbs it.
        let noisy_old = map(&[rec("g/a", 100.0, 40.0, 5)]);
        let noisy_new = map(&[rec("g/a", 150.0, 40.0, 5)]);
        let report = diff(&noisy_old, &noisy_new, DiffOptions::default());
        assert_eq!(report.rows[0].verdict, Verdict::Neutral);

        // Significant but tiny: the min_rel floor absorbs it.
        let a = map(&[rec("g/a", 1000.0, 0.5, 100)]);
        let b = map(&[rec("g/a", 1010.0, 0.5, 100)]);
        let report = diff(&a, &b, DiffOptions::default());
        assert_eq!(report.rows[0].verdict, Verdict::Neutral);
    }

    #[test]
    fn tolerance_band_gates_the_ratchet() {
        let old = map(&[rec("g/a", 100.0, 1.0, 15)]);
        let new = map(&[rec("g/a", 120.0, 1.0, 15)]);
        let strict = diff(&old, &new, DiffOptions::default());
        assert_eq!(strict.rows[0].verdict, Verdict::Regression);
        let banded = diff(
            &old,
            &new,
            DiffOptions {
                tolerance: Some(0.35),
                ..DiffOptions::default()
            },
        );
        assert_eq!(
            banded.rows[0].verdict,
            Verdict::Neutral,
            "+20% sits inside a 35% band"
        );
        let way_over = map(&[rec("g/a", 200.0, 1.0, 15)]);
        let banded = diff(
            &old,
            &way_over,
            DiffOptions {
                tolerance: Some(0.35),
                ..DiffOptions::default()
            },
        );
        assert_eq!(banded.rows[0].verdict, Verdict::Regression);
    }

    #[test]
    fn unmatched_ids_render_as_classified_rows() {
        let old = map(&[rec("g/gone", 10.0, 1.0, 15)]);
        let new = map(&[rec("g/new", 20.0, 1.0, 15)]);
        let report = diff(&old, &new, DiffOptions::default());
        assert_eq!(report.rows.len(), 2);
        assert_eq!(report.rows[0].verdict, Verdict::OnlyOld);
        assert_eq!(report.rows[1].verdict, Verdict::OnlyNew);
        let human = report.render_human();
        assert!(human.contains("only-old") && human.contains("only-new"));
        assert!(human.contains("2 id(s)"));
    }

    #[test]
    fn json_report_parses_with_the_in_repo_parser() {
        let old = map(&[rec("g/a", 100.0, 1.0, 15), rec("g/gone", 5.0, 0.1, 15)]);
        let new = map(&[rec("g/a", 150.0, 1.0, 15)]);
        let text = diff(&old, &new, DiffOptions::default()).render_json();
        let doc = parse_json(&text).expect("bench-diff JSON parses");
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some("gopim.bench_diff/v1")
        );
        assert_eq!(doc.get("regressions").and_then(Json::as_num), Some(1.0));
        let rows = doc.get("rows").and_then(Json::as_arr).expect("rows");
        assert_eq!(rows.len(), 2);
        assert_eq!(
            rows[1].get("new_ns"),
            Some(&Json::Null),
            "only-old rows carry null new_ns"
        );
    }

    #[test]
    fn trajectory_spans_files_with_disjoint_ids() {
        let a = (
            "pr2".to_string(),
            "{\"id\":\"g/a\",\"median_ns\":10.0}\n".to_string(),
        );
        let b = (
            "pr7".to_string(),
            "{\"id\":\"g/b\",\"median_ns\":20.0}\n".to_string(),
        );
        let text = trajectory(&[a, b]).expect("trajectory renders");
        assert!(text.contains("pr2") && text.contains("pr7"));
        assert!(text.contains("g/a") && text.contains("g/b"));
        assert!(text.contains("2 id(s) across 2 file(s)"));
    }

    #[test]
    fn args_parse_modes_and_flags() {
        let argv = |s: &[&str]| -> Vec<String> { s.iter().map(|s| s.to_string()).collect() };
        let a = BenchDiffArgs::parse(&argv(&["old.json", "new.json"])).expect("basic");
        assert_eq!(a.files, vec!["old.json", "new.json"]);
        assert_eq!(a.options().tolerance, None);

        let a = BenchDiffArgs::parse(&argv(&["--ratchet", "base.jsonl", "cur.jsonl", "--json"]))
            .expect("ratchet");
        assert!(a.ratchet && a.json);
        assert_eq!(a.options().tolerance, Some(DEFAULT_RATCHET_TOLERANCE));

        let a = BenchDiffArgs::parse(&argv(&["--ratchet", "--tolerance", "0.5", "a", "b"]))
            .expect("tolerance override");
        assert_eq!(a.options().tolerance, Some(0.5));

        let a = BenchDiffArgs::parse(&argv(&["--trajectory", "a", "b", "c"])).expect("trajectory");
        assert!(a.trajectory);
        assert_eq!(a.files.len(), 3);

        assert!(BenchDiffArgs::parse(&argv(&["one-file"])).is_err());
        assert!(BenchDiffArgs::parse(&argv(&["--trajectory", "a"])).is_err());
        assert!(BenchDiffArgs::parse(&argv(&["a", "b", "--bogus"])).is_err());
        assert!(BenchDiffArgs::parse(&argv(&["a", "b", "--tolerance", "nope"])).is_err());
        assert!(BenchDiffArgs::parse(&argv(&["a", "b", "--phase"])).is_err());
    }
}
