//! End-to-end system runner: workload → allocation → schedule → energy.
//!
//! # Incremental sweeps
//!
//! Sweep-level entry points ([`run_systems`], [`run_system_cached`],
//! [`run_ablation_cached`]) consult the canonical-hash run cache
//! (`gopim-cache`) before simulating: identical request tuples within
//! one sweep are deduplicated, repeated requests across experiments hit
//! the in-process tier, and with `GOPIM_CACHE=dir` whole re-runs hit
//! the disk tier. Intermediates — degree profiles, built workloads,
//! allocator inputs — are memoized behind `Arc`s so sweep points that
//! differ only downstream share one copy. Everything is a pure
//! performance layer: a cache hit returns bytes a fresh simulation
//! would produce bitwise (pinned by `tests/cache_differential.rs`).
//! The singular [`run_system`] stays uncached so span-level tooling
//! (and the trace-determinism tests) always observe a real simulation;
//! ML-estimator runs bypass the cache entirely because a trained
//! predictor has no canonical content hash.

use std::collections::BTreeMap;
use std::sync::Arc;

use gopim_alloc::{fixed, greedy_allocate, AllocInput, AllocPlan};
use gopim_cache::{CacheKey, CacheValue, CanonicalHash, CanonicalHasher, Decoder, Encoder, Memo};
use gopim_graph::datasets::Dataset;
use gopim_graph::DegreeProfile;
use gopim_mapping::SelectivePolicy;
use gopim_obs::metrics::LazyCounter;
use gopim_pipeline::energy::{energy_of_run, EnergyBreakdown};
use gopim_pipeline::latency::LatencyParams;
use gopim_pipeline::simulate_traced;
use gopim_pipeline::trace::export_spans;
use gopim_pipeline::workload::UpdateAccounting;
use gopim_pipeline::{
    simulate, GcnWorkload, MappingKind, PipelineOptions, PipelineResult, WorkloadOptions,
};
use gopim_predictor::TimePredictor;
use gopim_reram::spec::AcceleratorSpec;

use crate::system::{Ablation, System};

static RUNS: LazyCounter = LazyCounter::new("runner.system_runs");
static SWEEP_DEDUP: LazyCounter = LazyCounter::new("cache.sweep_dedup");

/// Profiles are small and few; workloads dominate memory (per-stage ×
/// per-micro-batch write matrices), so both tables stay bounded.
static PROFILE_MEMO: Memo<DegreeProfile> = Memo::new(64);
static WORKLOAD_MEMO: Memo<GcnWorkload> = Memo::new(96);
static ALLOC_INPUT_MEMO: Memo<AllocInput> = Memo::new(256);

/// Simulates the schedule, and — when span collection is on — re-runs
/// it traced and exports the schedule as one simulated Chrome-trace
/// track labeled `system/dataset`. The untraced result is always the
/// one returned, so tracing cannot perturb reported numbers.
fn simulate_and_export(
    workload: &GcnWorkload,
    replicas: &[usize],
    options: &PipelineOptions,
    label: &str,
) -> PipelineResult {
    if gopim_obs::trace_enabled() {
        let (result, events) = simulate_traced(workload, replicas, options);
        export_spans(workload, &events, label);
        return result;
    }
    simulate(workload, replicas, options)
}

/// How the allocator obtains per-stage time estimates.
#[derive(Debug, Clone, Default)]
pub enum Estimator {
    /// Exact stage times from the simulator (equivalent to the paper's
    /// profiling approach; Table VII shows the ML predictor lands
    /// within 4.3 % of this).
    #[default]
    Exact,
    /// A trained MLP Time Predictor (the paper's §V-A approach).
    Ml(TimePredictor),
}

/// Configuration shared by all experiment runs.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Micro-batch size (paper default 64).
    pub micro_batch: usize,
    /// Crossbar budget; `None` = the full 16 GB chip.
    pub crossbar_budget: Option<usize>,
    /// Seed for synthetic degree profiles.
    pub profile_seed: u64,
    /// Stage-time estimator fed to the allocator.
    pub estimator: Estimator,
    /// Batches to simulate.
    pub num_batches: usize,
    /// Fraction of edges SlimGNN-like's input subgraph pruning retains.
    pub slimgnn_prune_retain: f64,
    /// ReFlip's repeated source-vertex loads per processed edge
    /// (column-major execution penalty).
    pub reflip_reload_rows_per_edge: f64,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            micro_batch: 64,
            crossbar_budget: None,
            profile_seed: 7,
            estimator: Estimator::Exact,
            num_batches: 1,
            slimgnn_prune_retain: 0.75,
            reflip_reload_rows_per_edge: 0.5,
        }
    }
}

/// Result of running one system on one dataset.
#[derive(Debug, Clone)]
pub struct SystemRun {
    /// Which system ran.
    pub system_name: String,
    /// Dataset name.
    pub dataset_name: String,
    /// End-to-end execution time, ns.
    pub makespan_ns: f64,
    /// Energy breakdown, nJ.
    pub energy: EnergyBreakdown,
    /// Schedule details (per-stage busy/idle).
    pub schedule: PipelineResult,
    /// Replica counts per stage.
    pub replicas: Vec<usize>,
    /// Crossbars per replica per stage (Table VI's derivation).
    pub footprints: Vec<usize>,
    /// Stage names in order.
    pub stage_names: Vec<String>,
}

impl SystemRun {
    /// Total energy, nJ.
    pub fn energy_nj(&self) -> f64 {
        self.energy.total_nj()
    }

    /// Total crossbars occupied (base + replicas).
    pub fn total_crossbars(&self) -> usize {
        self.replicas
            .iter()
            .zip(&self.footprints)
            .map(|(&r, &x)| r * x)
            .sum()
    }
}

impl CanonicalHash for RunConfig {
    fn canonical_hash(&self, h: &mut CanonicalHasher) {
        h.write_tag("core.run_config/v1");
        h.write_usize(self.micro_batch);
        self.crossbar_budget.canonical_hash(h);
        h.write_u64(self.profile_seed);
        // The estimator hashes by variant only: `Exact` is a constant,
        // and a trained `Ml` predictor has no canonical content hash —
        // which is exactly why `run_key` refuses to cache ML runs.
        h.write_u8(match self.estimator {
            Estimator::Exact => 0,
            Estimator::Ml(_) => 1,
        });
        h.write_usize(self.num_batches);
        h.write_f64(self.slimgnn_prune_retain);
        h.write_f64(self.reflip_reload_rows_per_edge);
    }
}

impl CacheValue for SystemRun {
    fn encode(&self, e: &mut Encoder) {
        e.put_str(&self.system_name);
        e.put_str(&self.dataset_name);
        e.put_f64(self.makespan_ns);
        self.energy.encode(e);
        self.schedule.encode(e);
        self.replicas.encode(e);
        self.footprints.encode(e);
        self.stage_names.encode(e);
    }
    fn decode(d: &mut Decoder<'_>) -> Option<Self> {
        Some(SystemRun {
            system_name: d.take_str()?,
            dataset_name: d.take_str()?,
            makespan_ns: d.take_f64()?,
            energy: EnergyBreakdown::decode(d)?,
            schedule: PipelineResult::decode(d)?,
            replicas: Vec::decode(d)?,
            footprints: Vec::decode(d)?,
            stage_names: Vec::decode(d)?,
        })
    }
}

fn scaled_profile(profile: &DegreeProfile, retain: f64) -> DegreeProfile {
    DegreeProfile::from_degrees(
        profile
            .degrees()
            .iter()
            .map(|&d| ((f64::from(d) * retain).round() as u32).max(1))
            .collect(),
    )
}

/// Builds the workload options a system implies for a dataset profile.
fn workload_options(
    system: System,
    profile: &DegreeProfile,
    config: &RunConfig,
) -> WorkloadOptions {
    let (mapping, selective) = match system {
        System::Gopim => (
            MappingKind::Interleaved,
            Some(SelectivePolicy::adaptive(profile)),
        ),
        // SlimGNN-like prunes the input subgraph (handled by degree
        // scaling) but keeps index mapping and full updating.
        _ => (MappingKind::IndexBased, None),
    };
    WorkloadOptions {
        micro_batch: config.micro_batch,
        mapping,
        selective,
        accounting: UpdateAccounting::Amortized,
        params: LatencyParams::paper(),
        repeated_load_rows_per_edge: if system == System::ReFlip {
            config.reflip_reload_rows_per_edge
        } else {
            0.0
        },
        profile_seed: config.profile_seed,
    }
}

/// Allocator input derived from a workload and an estimator (shared
/// with the fault campaign, which reserves spares before allocating).
pub(crate) fn alloc_input(
    workload: &GcnWorkload,
    avg_degree: f64,
    budget: usize,
    estimator: &Estimator,
) -> AllocInput {
    let n_mb = workload.num_microbatches();
    // Mean write per micro-batch (the predictor's targets are
    // compute + write, without the dispatch overhead).
    let raw_writes: Vec<f64> = (0..workload.stages().len())
        .map(|i| (0..n_mb).map(|j| workload.write_ns(i, j)).sum::<f64>() / n_mb as f64)
        .collect();
    // Write + dispatch overhead: the per-micro-batch floor that
    // replicas cannot shrink.
    let mean_writes: Vec<f64> = raw_writes
        .iter()
        .map(|w| w + workload.overhead_ns())
        .collect();
    let spec = AcceleratorSpec::paper();
    let quantum = spec.mvm_latency_ns();
    let compute: Vec<f64> = match estimator {
        Estimator::Exact => workload.stages().iter().map(|s| s.compute_ns).collect(),
        Estimator::Ml(predictor) => predictor
            .predict_stage_times_ns(workload, avg_degree)
            .iter()
            .zip(&raw_writes)
            .map(|(&total, &w)| (total - w).max(quantum))
            .collect(),
    };
    AllocInput {
        quantum_ns: vec![quantum; compute.len()],
        compute_ns: compute,
        write_ns: mean_writes,
        crossbars_per_replica: workload
            .stages()
            .iter()
            .map(|s| s.crossbars_per_replica)
            .collect(),
        unused_crossbars: budget,
        num_microbatches: workload.num_microbatches(),
        max_replicas: None,
    }
}

fn allocate(system: System, input: &AllocInput, workload: &GcnWorkload) -> AllocPlan {
    let feature_class: Vec<bool> = workload
        .stages()
        .iter()
        .map(|s| s.kind.maps_features())
        .collect();
    match system {
        System::Serial => AllocPlan::serial(workload.stages().len()),
        System::SlimGnnLike => fixed::space_proportional(input),
        System::ReGraphX => fixed::regraphx_ratio(input, &feature_class),
        System::ReFlip => {
            let co_class: Vec<bool> = feature_class.iter().map(|&f| !f).collect();
            fixed::combination_only(input, &co_class)
        }
        System::GopimVanilla | System::Gopim => greedy_allocate(input),
    }
}

/// The pipeline options a system implies (hoisted out of `finish_run`
/// so cache keys can cover them without building a workload first).
fn pipeline_options_for(system: System, config: &RunConfig) -> PipelineOptions {
    if !system.pipelined() {
        PipelineOptions::serial()
    } else {
        PipelineOptions {
            intra_batch: true,
            inter_batch: system.inter_batch(),
            num_batches: config.num_batches,
        }
    }
}

/// The memoized degree profile of a dataset (shared `Arc` across every
/// sweep point requesting the same `(dataset, seed)`).
pub(crate) fn dataset_profile(dataset: Dataset, seed: u64) -> Arc<DegreeProfile> {
    let key = gopim_cache::key_of("runner.profile/v1", &(dataset, seed));
    PROFILE_MEMO.get_or_build(key, || dataset.profile(seed))
}

/// The memoized workload for `(name, profile, model, options)`; the
/// returned key canonically covers every build input, so it doubles as
/// the provenance component of downstream allocator-input keys.
fn memo_workload(
    name: &str,
    profile: &DegreeProfile,
    model: &gopim_graph::datasets::ModelConfig,
    options: &WorkloadOptions,
) -> (CacheKey, Arc<GcnWorkload>) {
    let mut h = CanonicalHasher::new();
    h.write_tag("runner.workload/v1");
    h.write_str(name);
    profile.canonical_hash(&mut h);
    model.canonical_hash(&mut h);
    options.canonical_hash(&mut h);
    let key = h.finish();
    let workload = WORKLOAD_MEMO.get_or_build(key, || {
        GcnWorkload::build_custom(name, profile, model, options)
    });
    (key, workload)
}

/// The canonical request key of one `(dataset, system, config)` run —
/// everything the result depends on, per DESIGN.md §12: the dataset
/// (profiles are pure functions of `(dataset, seed)`), the system, the
/// full run config, the latency model (hardware spec included), and
/// the derived pipeline options. `None` when the run is uncacheable
/// (ML estimator).
pub fn run_key(dataset: Dataset, system: System, config: &RunConfig) -> Option<CacheKey> {
    if !matches!(config.estimator, Estimator::Exact) {
        return None;
    }
    let mut h = CanonicalHasher::new();
    h.write_tag("runner.run_system/v1");
    dataset.canonical_hash(&mut h);
    system.canonical_hash(&mut h);
    config.canonical_hash(&mut h);
    LatencyParams::paper().canonical_hash(&mut h);
    pipeline_options_for(system, config).canonical_hash(&mut h);
    Some(h.finish())
}

/// Runs one system on one dataset end to end.
///
/// Always simulates (the cache-aware entry points are
/// [`run_system_cached`] and [`run_systems`]): span-level tooling and
/// the trace-determinism tests rely on this function emitting a real
/// `runner.run_system` span every call.
pub fn run_system(dataset: Dataset, system: System, config: &RunConfig) -> SystemRun {
    let profile = dataset_profile(dataset, config.profile_seed);
    run_system_on_profile(dataset, &profile, system, config)
}

/// [`run_system`] behind the canonical-hash run cache: a repeated
/// request — within this process or, with `GOPIM_CACHE=dir`, from an
/// earlier one — decodes the stored result instead of simulating.
/// Cached and fresh results are bitwise identical.
pub fn run_system_cached(dataset: Dataset, system: System, config: &RunConfig) -> SystemRun {
    match run_key(dataset, system, config) {
        Some(key) => {
            gopim_cache::global().get_or_compute(key, || run_system(dataset, system, config))
        }
        None => run_system(dataset, system, config),
    }
}

/// Runs several `(dataset, system)` configurations, fanning the
/// independent simulations across the `gopim-par` pool. Results come
/// back in input order and each run is bitwise identical to a
/// standalone [`run_system`] call. Identical tuples are simulated once
/// (sweep dedup), and every unique tuple consults the run cache before
/// simulating.
pub fn run_systems(configs: &[(Dataset, System)], config: &RunConfig) -> Vec<SystemRun> {
    // Dedup identical requests by canonical key; uncacheable runs
    // (`None` key) always simulate individually.
    let keys: Vec<Option<CacheKey>> = configs
        .iter()
        .map(|&(d, s)| run_key(d, s, config))
        .collect();
    if gopim_obs::manifest_enabled() {
        // Fold the sweep's canonical cell keys into one configuration
        // hash for the run manifest, so two manifests are comparable
        // at a glance: same hash ⇒ same requested work.
        let mut h = CanonicalHasher::new();
        h.write_tag("runner.sweep_manifest/v1");
        for key in keys.iter().flatten() {
            key.as_u128().canonical_hash(&mut h);
        }
        gopim_obs::manifest::record_str(
            "run.config_hash",
            format!("{:032x}", h.finish().as_u128()),
        );
        gopim_obs::manifest::record_u64("run.sweep_cells", configs.len() as u64);
    }
    let mut first_slot: BTreeMap<u128, usize> = BTreeMap::new();
    let mut unique: Vec<usize> = Vec::new();
    let mut slots: Vec<usize> = Vec::with_capacity(configs.len());
    for (i, key) in keys.iter().enumerate() {
        let slot = match key {
            Some(k) => *first_slot.entry(k.as_u128()).or_insert_with(|| {
                unique.push(i);
                unique.len() - 1
            }),
            None => {
                unique.push(i);
                unique.len() - 1
            }
        };
        slots.push(slot);
    }
    if unique.len() < configs.len() {
        SWEEP_DEDUP.add((configs.len() - unique.len()) as u64);
    }
    let runs = gopim_par::par_map(&unique, |&i| {
        run_system_cached(configs[i].0, configs[i].1, config)
    });
    slots.iter().map(|&s| runs[s].clone()).collect()
}

/// Builds the workload a system would run on a dataset (for callers
/// that want to inspect or re-simulate it, e.g. the trace/Gantt
/// example). Served from the workload memo when the same build was
/// already requested this process.
pub fn build_workload(dataset: Dataset, system: System, config: &RunConfig) -> GcnWorkload {
    let base = dataset_profile(dataset, config.profile_seed);
    let profile = if system == System::SlimGnnLike {
        scaled_profile(&base, config.slimgnn_prune_retain)
    } else {
        (*base).clone()
    };
    let options = workload_options(system, &profile, config);
    let (_, workload) = memo_workload(dataset.name(), &profile, &dataset.model(), &options);
    (*workload).clone()
}

/// Replica allocation without schedule simulation — the serve layer's
/// `Allocate` job and any caller that wants the plan cheaper than a
/// full run. Returns per-stage `(replicas, crossbars_per_replica)`.
pub fn allocation_plan(
    dataset: Dataset,
    system: System,
    config: &RunConfig,
) -> (Vec<usize>, Vec<usize>) {
    let base = dataset_profile(dataset, config.profile_seed);
    let profile = if system == System::SlimGnnLike {
        scaled_profile(&base, config.slimgnn_prune_retain)
    } else {
        (*base).clone()
    };
    let options = workload_options(system, &profile, config);
    let (_, workload) = memo_workload(dataset.name(), &profile, &dataset.model(), &options);
    let spec = AcceleratorSpec::paper();
    let total = config
        .crossbar_budget
        .unwrap_or_else(|| spec.total_crossbars());
    let budget = total.saturating_sub(workload.base_crossbars());
    let input = alloc_input(&workload, profile.avg_degree(), budget, &config.estimator);
    let plan = allocate(system, &input, &workload);
    let footprints = workload
        .stages()
        .iter()
        .map(|s| s.crossbars_per_replica)
        .collect();
    (plan.replicas, footprints)
}

/// Runs one system on a custom (profile, model) pair — the entry point
/// for user-supplied graphs (see the CLI's `custom` command).
pub fn run_system_custom(
    name: &str,
    profile: &DegreeProfile,
    model: &gopim_graph::datasets::ModelConfig,
    system: System,
    config: &RunConfig,
) -> SystemRun {
    let profile = if system == System::SlimGnnLike {
        scaled_profile(profile, config.slimgnn_prune_retain)
    } else {
        profile.clone()
    };
    let options = workload_options(system, &profile, config);
    let (workload_key, workload) = memo_workload(name, &profile, model, &options);
    finish_run(
        system.name(),
        &profile,
        workload_key,
        &workload,
        system,
        config,
    )
}

/// Runs one system on an explicit degree profile (used by the
/// scalability sweeps).
pub fn run_system_on_profile(
    dataset: Dataset,
    profile: &DegreeProfile,
    system: System,
    config: &RunConfig,
) -> SystemRun {
    let profile = if system == System::SlimGnnLike {
        scaled_profile(profile, config.slimgnn_prune_retain)
    } else {
        profile.clone()
    };
    let options = workload_options(system, &profile, config);
    let (workload_key, workload) =
        memo_workload(dataset.name(), &profile, &dataset.model(), &options);
    finish_run(
        system.name(),
        &profile,
        workload_key,
        &workload,
        system,
        config,
    )
}

fn finish_run(
    name: &str,
    profile: &DegreeProfile,
    workload_key: CacheKey,
    workload: &GcnWorkload,
    system: System,
    config: &RunConfig,
) -> SystemRun {
    let _span = gopim_obs::SpanGuard::enter_dyn(
        || format!("runner.run_system/{name}/{}", workload.name()),
        "span",
        &[],
    );
    RUNS.add(1);
    let spec = AcceleratorSpec::paper();
    let total = config
        .crossbar_budget
        .unwrap_or_else(|| spec.total_crossbars());
    let budget = total.saturating_sub(workload.base_crossbars());
    // With the exact estimator the allocator input is a pure function
    // of (workload, avg_degree, budget), all covered by the workload
    // key — share one Arc across every system that derives the same
    // input (Serial/ReGraphX/GoPIM-Vanilla on one dataset, for one).
    let input: Arc<AllocInput> = match config.estimator {
        Estimator::Exact => {
            let mut h = CanonicalHasher::new();
            h.write_tag("runner.alloc_input/v1");
            workload_key.as_u128().canonical_hash(&mut h);
            h.write_f64(profile.avg_degree());
            h.write_usize(budget);
            ALLOC_INPUT_MEMO.get_or_build(h.finish(), || {
                alloc_input(workload, profile.avg_degree(), budget, &config.estimator)
            })
        }
        Estimator::Ml(_) => Arc::new(alloc_input(
            workload,
            profile.avg_degree(),
            budget,
            &config.estimator,
        )),
    };
    let plan = allocate(system, &input, workload);

    let pipeline_options = pipeline_options_for(system, config);
    let schedule = simulate_and_export(
        workload,
        &plan.replicas,
        &pipeline_options,
        &format!("{name}/{}", workload.name()),
    );
    let energy = energy_of_run(
        &spec,
        workload,
        &plan.replicas,
        &schedule,
        config.num_batches,
    );
    SystemRun {
        system_name: name.to_string(),
        dataset_name: workload.name().to_string(),
        makespan_ns: schedule.makespan_ns,
        energy,
        replicas: plan.replicas,
        footprints: workload
            .stages()
            .iter()
            .map(|s| s.crossbars_per_replica)
            .collect(),
        stage_names: workload.stages().iter().map(|s| s.name()).collect(),
        schedule,
    }
}

/// The canonical request key of one ablation run; `None` when
/// uncacheable (ML estimator) or when the variant delegates to
/// [`run_system`] (those share `run_system` keys instead).
pub fn ablation_key(dataset: Dataset, variant: Ablation, config: &RunConfig) -> Option<CacheKey> {
    if !matches!(config.estimator, Estimator::Exact) {
        return None;
    }
    if matches!(variant, Ablation::Serial | Ablation::Full) {
        return None;
    }
    let mut h = CanonicalHasher::new();
    h.write_tag("runner.run_ablation/v1");
    dataset.canonical_hash(&mut h);
    variant.canonical_hash(&mut h);
    config.canonical_hash(&mut h);
    LatencyParams::paper().canonical_hash(&mut h);
    Some(h.finish())
}

/// [`run_ablation`] behind the run cache. The `Serial`/`Full` variants
/// share cache entries with the plain system sweep ([`run_system_cached`]
/// with `System::Serial`/`System::Gopim`); the pipeline-only variants
/// get their own keys.
pub fn run_ablation_cached(dataset: Dataset, variant: Ablation, config: &RunConfig) -> SystemRun {
    match variant {
        Ablation::Serial => run_system_cached(dataset, System::Serial, config),
        Ablation::Full => run_system_cached(dataset, System::Gopim, config),
        Ablation::PlusPp | Ablation::PlusIsu => match ablation_key(dataset, variant, config) {
            Some(key) => {
                gopim_cache::global().get_or_compute(key, || run_ablation(dataset, variant, config))
            }
            None => run_ablation(dataset, variant, config),
        },
    }
}

/// Runs one Fig. 14 ablation variant on a dataset.
pub fn run_ablation(dataset: Dataset, variant: Ablation, config: &RunConfig) -> SystemRun {
    let profile = dataset_profile(dataset, config.profile_seed);
    match variant {
        Ablation::Serial => run_system(dataset, System::Serial, config),
        Ablation::Full => run_system(dataset, System::Gopim, config),
        Ablation::PlusPp | Ablation::PlusIsu => {
            let options = WorkloadOptions {
                micro_batch: config.micro_batch,
                mapping: if variant == Ablation::PlusIsu {
                    MappingKind::Interleaved
                } else {
                    MappingKind::IndexBased
                },
                selective: (variant == Ablation::PlusIsu)
                    .then(|| SelectivePolicy::adaptive(&profile)),
                accounting: UpdateAccounting::Amortized,
                params: LatencyParams::paper(),
                repeated_load_rows_per_edge: 0.0,
                profile_seed: config.profile_seed,
            };
            let (_, workload) = memo_workload(dataset.name(), &profile, &dataset.model(), &options);
            // Pipelining without replicas: force a serial plan.
            let spec = AcceleratorSpec::paper();
            let plan = AllocPlan::serial(workload.stages().len());
            let pipeline_options = PipelineOptions {
                intra_batch: true,
                inter_batch: true,
                num_batches: config.num_batches,
            };
            let schedule = simulate_and_export(
                &workload,
                &plan.replicas,
                &pipeline_options,
                &format!("{}/{}", variant.name(), workload.name()),
            );
            let energy = energy_of_run(
                &spec,
                &workload,
                &plan.replicas,
                &schedule,
                config.num_batches,
            );
            SystemRun {
                system_name: variant.name().to_string(),
                dataset_name: workload.name().to_string(),
                makespan_ns: schedule.makespan_ns,
                energy,
                replicas: plan.replicas,
                footprints: workload
                    .stages()
                    .iter()
                    .map(|s| s.crossbars_per_replica)
                    .collect(),
                stage_names: workload.stages().iter().map(|s| s.name()).collect(),
                schedule,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> RunConfig {
        RunConfig {
            // A reduced chip keeps the allocator fast in tests while
            // preserving every qualitative relationship.
            crossbar_budget: Some(300_000),
            ..RunConfig::default()
        }
    }

    #[test]
    fn gopim_beats_every_baseline_on_ddi() {
        let config = quick_config();
        let runs: Vec<SystemRun> = System::ALL
            .iter()
            .map(|&s| run_system(Dataset::Ddi, s, &config))
            .collect();
        let serial = runs[0].makespan_ns;
        let gopim = runs[5].makespan_ns;
        for run in &runs[..5] {
            assert!(
                gopim < run.makespan_ns,
                "GoPIM {} vs {} {}",
                gopim,
                run.system_name,
                run.makespan_ns
            );
        }
        assert!(serial / gopim > 50.0, "speedup {}", serial / gopim);
    }

    #[test]
    fn gopim_beats_vanilla_via_isu() {
        let config = quick_config();
        let vanilla = run_system(Dataset::Ddi, System::GopimVanilla, &config);
        let gopim = run_system(Dataset::Ddi, System::Gopim, &config);
        assert!(gopim.makespan_ns < vanilla.makespan_ns);
    }

    #[test]
    fn energy_ordering_matches_paper_shape() {
        let config = quick_config();
        let serial = run_system(Dataset::Ddi, System::Serial, &config);
        let gopim = run_system(Dataset::Ddi, System::Gopim, &config);
        assert!(gopim.energy_nj() < serial.energy_nj());
    }

    #[test]
    fn reflip_burns_more_write_energy_than_serial_on_dense_graphs() {
        let config = quick_config();
        let serial = run_system(Dataset::Ddi, System::Serial, &config);
        let reflip = run_system(Dataset::Ddi, System::ReFlip, &config);
        assert!(reflip.energy.write_nj > serial.energy.write_nj);
    }

    #[test]
    fn ablation_is_monotone() {
        let config = quick_config();
        let times: Vec<f64> = Ablation::ALL
            .iter()
            .map(|&v| run_ablation(Dataset::Ddi, v, &config).makespan_ns)
            .collect();
        assert!(times[1] < times[0], "+PP beats Serial");
        assert!(times[2] <= times[1] * 1.001, "+ISU no slower than +PP");
        assert!(times[3] < times[2], "full GoPIM fastest");
    }

    #[test]
    fn serial_uses_single_replicas() {
        let config = quick_config();
        let run = run_system(Dataset::Ddi, System::Serial, &config);
        assert!(run.replicas.iter().all(|&r| r == 1));
        // Table VI Serial total: ours 2×(32+536+32+536) = 2272.
        assert_eq!(run.total_crossbars(), 2272);
    }

    #[test]
    fn budget_is_respected() {
        let config = quick_config();
        let run = run_system(Dataset::Ddi, System::Gopim, &config);
        assert!(run.total_crossbars() <= 300_000);
        assert!(run.total_crossbars() > 2272, "replicas granted");
    }
}
