//! Argument parsing for the `gopim` CLI binary (kept in the library so
//! it is unit-testable).

use gopim_graph::datasets::Dataset;

use crate::system::System;

/// Resolves a dataset by its paper name, case-insensitively.
///
/// # Errors
///
/// Returns a user-facing message listing the valid names.
pub fn parse_dataset(name: &str) -> Result<Dataset, String> {
    Dataset::ALL
        .into_iter()
        .find(|d| d.name().eq_ignore_ascii_case(name))
        .ok_or_else(|| {
            format!(
                "unknown dataset '{name}' (try: {})",
                Dataset::ALL.map(|d| d.name()).join(", ")
            )
        })
}

/// Resolves a system by its paper name, case-insensitively.
///
/// # Errors
///
/// Returns a user-facing message listing the valid names.
pub fn parse_system(name: &str) -> Result<System, String> {
    System::ALL
        .into_iter()
        .find(|s| s.name().eq_ignore_ascii_case(name))
        .ok_or_else(|| {
            format!(
                "unknown system '{name}' (try: {})",
                System::ALL.map(|s| s.name()).join(", ")
            )
        })
}

/// Parses an optional positional micro-batch argument (default 64).
///
/// # Errors
///
/// Returns a user-facing message for non-numeric or zero values.
pub fn parse_micro_batch(arg: Option<&str>) -> Result<usize, String> {
    match arg {
        None => Ok(64),
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| format!("invalid micro-batch '{v}'"))
            .and_then(|b| {
                if b == 0 {
                    Err("micro-batch must be positive".into())
                } else {
                    Ok(b)
                }
            }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datasets_parse_case_insensitively() {
        assert_eq!(parse_dataset("DDI").unwrap(), Dataset::Ddi);
        assert_eq!(parse_dataset("cora").unwrap(), Dataset::Cora);
        assert!(parse_dataset("imdb")
            .unwrap_err()
            .contains("unknown dataset"));
    }

    #[test]
    fn systems_parse_by_paper_names() {
        assert_eq!(parse_system("gopim").unwrap(), System::Gopim);
        assert_eq!(parse_system("slimgnn-like").unwrap(), System::SlimGnnLike);
        assert_eq!(parse_system("REFLIP").unwrap(), System::ReFlip);
        assert!(parse_system("tpu").is_err());
    }

    #[test]
    fn micro_batch_defaults_and_validates() {
        assert_eq!(parse_micro_batch(None).unwrap(), 64);
        assert_eq!(parse_micro_batch(Some("128")).unwrap(), 128);
        assert!(parse_micro_batch(Some("0")).is_err());
        assert!(parse_micro_batch(Some("lots")).is_err());
    }
}
