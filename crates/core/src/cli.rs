//! Argument parsing for the `gopim` CLI binary (kept in the library so
//! it is unit-testable).

use gopim_graph::datasets::Dataset;

use crate::system::System;

/// Resolves a dataset by its paper name, case-insensitively.
///
/// # Errors
///
/// Returns a user-facing message listing the valid names.
pub fn parse_dataset(name: &str) -> Result<Dataset, String> {
    Dataset::ALL
        .into_iter()
        .find(|d| d.name().eq_ignore_ascii_case(name))
        .ok_or_else(|| {
            format!(
                "unknown dataset '{name}' (try: {})",
                Dataset::ALL.map(|d| d.name()).join(", ")
            )
        })
}

/// Resolves a system by its paper name, case-insensitively.
///
/// # Errors
///
/// Returns a user-facing message listing the valid names.
pub fn parse_system(name: &str) -> Result<System, String> {
    System::ALL
        .into_iter()
        .find(|s| s.name().eq_ignore_ascii_case(name))
        .ok_or_else(|| {
            format!(
                "unknown system '{name}' (try: {})",
                System::ALL.map(|s| s.name()).join(", ")
            )
        })
}

/// Parses an optional positional micro-batch argument (default 64).
///
/// # Errors
///
/// Returns a user-facing message for non-numeric or zero values.
pub fn parse_micro_batch(arg: Option<&str>) -> Result<usize, String> {
    match arg {
        None => Ok(64),
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| format!("invalid micro-batch '{v}'"))
            .and_then(|b| {
                if b == 0 {
                    Err("micro-batch must be positive".into())
                } else {
                    Ok(b)
                }
            }),
    }
}

/// Parses an optional listen address for `gopim serve` (default
/// `127.0.0.1:4857`; `:0` picks an ephemeral port). Accepts `host:port`
/// or a bare port.
///
/// # Errors
///
/// Returns a user-facing message for unparsable addresses.
pub fn parse_serve_addr(arg: Option<&str>) -> Result<String, String> {
    match arg {
        None | Some("") => Ok("127.0.0.1:4857".to_string()),
        Some(v) if v.chars().all(|c| c.is_ascii_digit()) => Ok(format!("127.0.0.1:{v}")),
        Some(v) => {
            use std::net::ToSocketAddrs;
            // Validate eagerly so a typo fails with a parse error here
            // instead of a bind error later.
            v.to_socket_addrs()
                .map_err(|e| format!("invalid listen address '{v}': {e}"))?;
            Ok(v.to_string())
        }
    }
}

/// Parses the `GOPIM_FAULT_SEED` environment value (default 7).
///
/// # Errors
///
/// Returns a user-facing message for non-numeric values.
pub fn parse_fault_seed(value: Option<&str>) -> Result<u64, String> {
    match value {
        None | Some("") => Ok(7),
        Some(v) => v
            .parse::<u64>()
            .map_err(|_| format!("invalid GOPIM_FAULT_SEED '{v}'")),
    }
}

/// Parses the `GOPIM_FAULT_RATES` environment value: a comma-separated
/// list of stuck-at rates in `[0, 1]` (default `0,0.05,0.2`).
///
/// # Errors
///
/// Returns a user-facing message for empty lists, non-numeric entries
/// or rates outside `[0, 1]`.
pub fn parse_fault_rates(value: Option<&str>) -> Result<Vec<f64>, String> {
    let raw = match value {
        None | Some("") => return Ok(vec![0.0, 0.05, 0.2]),
        Some(v) => v,
    };
    let mut rates = Vec::new();
    for part in raw.split(',') {
        let part = part.trim();
        let rate: f64 = part
            .parse()
            .map_err(|_| format!("invalid fault rate '{part}' in GOPIM_FAULT_RATES"))?;
        if !(0.0..=1.0).contains(&rate) {
            return Err(format!("fault rate {rate} outside [0, 1]"));
        }
        rates.push(rate);
    }
    if rates.is_empty() {
        return Err("GOPIM_FAULT_RATES lists no rates".into());
    }
    Ok(rates)
}

/// Parses the `GOPIM_FAULT_SPARES` environment value: the fraction of
/// the leftover crossbar pool reserved as remap spares, in `[0, 1]`
/// (default 0.02).
///
/// # Errors
///
/// Returns a user-facing message for non-numeric values or fractions
/// outside `[0, 1]`.
pub fn parse_fault_spares(value: Option<&str>) -> Result<f64, String> {
    match value {
        None | Some("") => Ok(0.02),
        Some(v) => {
            let fraction: f64 = v
                .parse()
                .map_err(|_| format!("invalid GOPIM_FAULT_SPARES '{v}'"))?;
            if !(0.0..=1.0).contains(&fraction) {
                return Err(format!("spare fraction {fraction} outside [0, 1]"));
            }
            Ok(fraction)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datasets_parse_case_insensitively() {
        assert_eq!(parse_dataset("DDI").unwrap(), Dataset::Ddi);
        assert_eq!(parse_dataset("cora").unwrap(), Dataset::Cora);
        assert!(parse_dataset("imdb")
            .unwrap_err()
            .contains("unknown dataset"));
    }

    #[test]
    fn systems_parse_by_paper_names() {
        assert_eq!(parse_system("gopim").unwrap(), System::Gopim);
        assert_eq!(parse_system("slimgnn-like").unwrap(), System::SlimGnnLike);
        assert_eq!(parse_system("REFLIP").unwrap(), System::ReFlip);
        assert!(parse_system("tpu").is_err());
    }

    #[test]
    fn fault_seed_defaults_and_validates() {
        assert_eq!(parse_fault_seed(None).unwrap(), 7);
        assert_eq!(parse_fault_seed(Some("")).unwrap(), 7);
        assert_eq!(parse_fault_seed(Some("42")).unwrap(), 42);
        assert!(parse_fault_seed(Some("many")).is_err());
    }

    #[test]
    fn fault_rates_parse_comma_lists() {
        assert_eq!(parse_fault_rates(None).unwrap(), vec![0.0, 0.05, 0.2]);
        assert_eq!(
            parse_fault_rates(Some("0, 0.1 ,0.5")).unwrap(),
            vec![0.0, 0.1, 0.5]
        );
        assert!(parse_fault_rates(Some("0.1,huge")).is_err());
        assert!(parse_fault_rates(Some("1.5")).is_err());
        assert!(parse_fault_rates(Some(",")).is_err());
    }

    #[test]
    fn fault_spares_bound_the_fraction() {
        assert_eq!(parse_fault_spares(None).unwrap(), 0.02);
        assert_eq!(parse_fault_spares(Some("0.1")).unwrap(), 0.1);
        assert!(parse_fault_spares(Some("-0.1")).is_err());
        assert!(parse_fault_spares(Some("2")).is_err());
        assert!(parse_fault_spares(Some("few")).is_err());
    }

    #[test]
    fn serve_addr_defaults_and_accepts_bare_ports() {
        assert_eq!(parse_serve_addr(None).unwrap(), "127.0.0.1:4857");
        assert_eq!(parse_serve_addr(Some("9000")).unwrap(), "127.0.0.1:9000");
        assert_eq!(parse_serve_addr(Some("0.0.0.0:80")).unwrap(), "0.0.0.0:80");
        assert!(parse_serve_addr(Some("not an address")).is_err());
    }

    #[test]
    fn micro_batch_defaults_and_validates() {
        assert_eq!(parse_micro_batch(None).unwrap(), 64);
        assert_eq!(parse_micro_batch(Some("128")).unwrap(), 128);
        assert!(parse_micro_batch(Some("0")).is_err());
        assert!(parse_micro_batch(Some("lots")).is_err());
    }
}
