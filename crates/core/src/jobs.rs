//! Library-callable job handlers: the runner/experiments entry points
//! repackaged as self-describing jobs a `gopim-serve` server executes.
//!
//! Each [`JobRequest`] is a value — it encodes to codec bytes for the
//! wire ([`JobRequest::to_bytes`]), hashes to a canonical request key
//! for result reuse ([`JobRequest::cache_key`]), prices itself for
//! fair-share scheduling ([`JobRequest::predicted_cost_ns`], via the
//! predictor's host-cost model), and executes to the same codec bytes
//! the in-process API would produce ([`JobRequest::execute`]).
//!
//! **Key coherence.** `Simulate` and `Ablation` jobs deliberately
//! reuse the runner's own canonical keys ([`run_key`] /
//! [`ablation_key`]), and their result bytes are exactly the
//! [`SystemRun`] codec bytes [`run_system_cached`] stores. A result
//! computed by a local sweep is therefore served to a socket client
//! without recomputation, and vice versa — one cache, two front doors.
//! The differential harness (`tests/serve_differential.rs`) pins that
//! socket-served bytes equal in-process bytes bitwise, cold and warm.

use gopim_cache::{CacheKey, CacheValue, CanonicalHash, CanonicalHasher, Decoder, Encoder};
use gopim_graph::datasets::Dataset;
use gopim_predictor::{profiling, HostCostModel};
use gopim_serve::JobHandler;

use crate::runner::{
    ablation_key, allocation_plan, build_workload, run_ablation_cached, run_key, run_system_cached,
    run_systems, RunConfig,
};
use crate::system::{Ablation, System};

/// The wire-serializable subset of [`RunConfig`]: everything except
/// the estimator, which is always `Exact` for served jobs (a trained
/// ML predictor has no canonical content hash, so an ML job could
/// neither be cached nor proven equal across the socket).
#[derive(Debug, Clone, PartialEq)]
pub struct JobConfig {
    /// Micro-batch size (paper default 64).
    pub micro_batch: usize,
    /// Crossbar budget; `None` = the full chip.
    pub crossbar_budget: Option<usize>,
    /// Seed for synthetic degree profiles.
    pub profile_seed: u64,
    /// Batches to simulate.
    pub num_batches: usize,
    /// SlimGNN-like's retained edge fraction.
    pub slimgnn_prune_retain: f64,
    /// ReFlip's repeated loads per edge.
    pub reflip_reload_rows_per_edge: f64,
}

impl Default for JobConfig {
    fn default() -> Self {
        JobConfig::from_run_config(&RunConfig::default())
    }
}

impl JobConfig {
    /// Captures the serializable fields of a [`RunConfig`].
    pub fn from_run_config(config: &RunConfig) -> Self {
        JobConfig {
            micro_batch: config.micro_batch,
            crossbar_budget: config.crossbar_budget,
            profile_seed: config.profile_seed,
            num_batches: config.num_batches,
            slimgnn_prune_retain: config.slimgnn_prune_retain,
            reflip_reload_rows_per_edge: config.reflip_reload_rows_per_edge,
        }
    }

    /// Expands back to a [`RunConfig`] with the exact estimator.
    pub fn to_run_config(&self) -> RunConfig {
        RunConfig {
            micro_batch: self.micro_batch,
            crossbar_budget: self.crossbar_budget,
            profile_seed: self.profile_seed,
            estimator: crate::runner::Estimator::Exact,
            num_batches: self.num_batches,
            slimgnn_prune_retain: self.slimgnn_prune_retain,
            reflip_reload_rows_per_edge: self.reflip_reload_rows_per_edge,
        }
    }
}

impl CacheValue for JobConfig {
    fn encode(&self, e: &mut Encoder) {
        e.put_usize(self.micro_batch);
        match self.crossbar_budget {
            Some(b) => {
                e.put_bool(true);
                e.put_usize(b);
            }
            None => e.put_bool(false),
        }
        e.put_u64(self.profile_seed);
        e.put_usize(self.num_batches);
        e.put_f64(self.slimgnn_prune_retain);
        e.put_f64(self.reflip_reload_rows_per_edge);
    }
    fn decode(d: &mut Decoder<'_>) -> Option<Self> {
        let micro_batch = d.take_usize()?;
        let crossbar_budget = if d.take_bool()? {
            Some(d.take_usize()?)
        } else {
            None
        };
        Some(JobConfig {
            micro_batch,
            crossbar_budget,
            profile_seed: d.take_u64()?,
            num_batches: d.take_usize()?,
            slimgnn_prune_retain: d.take_f64()?,
            reflip_reload_rows_per_edge: d.take_f64()?,
        })
    }
}

fn dataset_index(d: Dataset) -> u8 {
    Dataset::ALL.iter().position(|&x| x == d).unwrap_or(0) as u8
}

fn system_index(s: System) -> u8 {
    System::ALL.iter().position(|&x| x == s).unwrap_or(0) as u8
}

fn ablation_index(a: Ablation) -> u8 {
    Ablation::ALL.iter().position(|&x| x == a).unwrap_or(0) as u8
}

/// One job a client can submit over the serve protocol.
#[derive(Debug, Clone, PartialEq)]
pub enum JobRequest {
    /// One `(dataset, system)` simulation — a [`run_system_cached`]
    /// call; result bytes are the [`SystemRun`] codec encoding.
    ///
    /// [`SystemRun`]: crate::runner::SystemRun
    Simulate {
        /// Dataset to simulate.
        dataset: Dataset,
        /// System to simulate.
        system: System,
        /// Run configuration.
        config: JobConfig,
    },
    /// A whole sweep — one [`run_systems`] call (sweep dedup and the
    /// `gopim-par` fan-out included); result bytes encode the
    /// `Vec<SystemRun>` in cell order.
    Sweep {
        /// The `(dataset, system)` cells in order.
        cells: Vec<(Dataset, System)>,
        /// Run configuration shared by every cell.
        config: JobConfig,
    },
    /// One Fig. 14 ablation variant — [`run_ablation_cached`].
    Ablation {
        /// Dataset to simulate.
        dataset: Dataset,
        /// Ablation variant.
        variant: Ablation,
        /// Run configuration.
        config: JobConfig,
    },
    /// Replica allocation only (no schedule simulation) — the
    /// [`allocation_plan`] entry point; result bytes encode
    /// `(Vec<usize> replicas, Vec<usize> footprints)`.
    Allocate {
        /// Dataset whose workload to allocate for.
        dataset: Dataset,
        /// System whose policy to allocate with.
        system: System,
        /// Run configuration.
        config: JobConfig,
    },
    /// A profiling/prediction pass over the built workload — per-stage
    /// times plus the simulated collection cost (Table VII's
    /// trade-off); result bytes encode `(Vec<f64>, f64)`.
    Predict {
        /// Dataset whose workload to profile.
        dataset: Dataset,
        /// System whose workload shape to profile.
        system: System,
        /// Run configuration.
        config: JobConfig,
    },
}

impl CacheValue for JobRequest {
    fn encode(&self, e: &mut Encoder) {
        match self {
            JobRequest::Simulate {
                dataset,
                system,
                config,
            } => {
                e.put_u8(0);
                e.put_u8(dataset_index(*dataset));
                e.put_u8(system_index(*system));
                config.encode(e);
            }
            JobRequest::Sweep { cells, config } => {
                e.put_u8(1);
                e.put_usize(cells.len());
                for &(d, s) in cells {
                    e.put_u8(dataset_index(d));
                    e.put_u8(system_index(s));
                }
                config.encode(e);
            }
            JobRequest::Ablation {
                dataset,
                variant,
                config,
            } => {
                e.put_u8(2);
                e.put_u8(dataset_index(*dataset));
                e.put_u8(ablation_index(*variant));
                config.encode(e);
            }
            JobRequest::Allocate {
                dataset,
                system,
                config,
            } => {
                e.put_u8(3);
                e.put_u8(dataset_index(*dataset));
                e.put_u8(system_index(*system));
                config.encode(e);
            }
            JobRequest::Predict {
                dataset,
                system,
                config,
            } => {
                e.put_u8(4);
                e.put_u8(dataset_index(*dataset));
                e.put_u8(system_index(*system));
                config.encode(e);
            }
        }
    }

    fn decode(d: &mut Decoder<'_>) -> Option<Self> {
        let take_dataset = |d: &mut Decoder<'_>| -> Option<Dataset> {
            Dataset::ALL.get(d.take_u8()? as usize).copied()
        };
        let take_system = |d: &mut Decoder<'_>| -> Option<System> {
            System::ALL.get(d.take_u8()? as usize).copied()
        };
        match d.take_u8()? {
            0 => Some(JobRequest::Simulate {
                dataset: take_dataset(d)?,
                system: take_system(d)?,
                config: JobConfig::decode(d)?,
            }),
            1 => {
                let n = d.take_usize()?;
                // A hostile length cannot drive allocation: cells are
                // collected element-by-element, so a short payload
                // simply fails decode.
                let mut cells = Vec::new();
                for _ in 0..n {
                    cells.push((take_dataset(d)?, take_system(d)?));
                }
                Some(JobRequest::Sweep {
                    cells,
                    config: JobConfig::decode(d)?,
                })
            }
            2 => Some(JobRequest::Ablation {
                dataset: take_dataset(d)?,
                variant: Ablation::ALL.get(d.take_u8()? as usize).copied()?,
                config: JobConfig::decode(d)?,
            }),
            3 => Some(JobRequest::Allocate {
                dataset: take_dataset(d)?,
                system: take_system(d)?,
                config: JobConfig::decode(d)?,
            }),
            4 => Some(JobRequest::Predict {
                dataset: take_dataset(d)?,
                system: take_system(d)?,
                config: JobConfig::decode(d)?,
            }),
            _ => None,
        }
    }
}

impl JobRequest {
    /// The canonical request key for result reuse; `None` never occurs
    /// for well-formed served jobs today (every served config uses the
    /// exact estimator), but the type keeps the door open.
    ///
    /// `Simulate`/`Ablation` reuse the runner's own keys, so the serve
    /// cache and the in-process run cache are one namespace.
    pub fn cache_key(&self) -> Option<CacheKey> {
        match self {
            JobRequest::Simulate {
                dataset,
                system,
                config,
            } => run_key(*dataset, *system, &config.to_run_config()),
            JobRequest::Sweep { cells, config } => {
                let rc = config.to_run_config();
                let mut h = CanonicalHasher::new();
                h.write_tag("serve.job.sweep/v1");
                h.write_usize(cells.len());
                for &(d, s) in cells {
                    match run_key(d, s, &rc) {
                        Some(k) => k.as_u128().canonical_hash(&mut h),
                        None => return None,
                    }
                }
                Some(h.finish())
            }
            JobRequest::Ablation {
                dataset,
                variant,
                config,
            } => {
                let rc = config.to_run_config();
                match variant {
                    // Serial/Full share the plain system-run entries.
                    Ablation::Serial => run_key(*dataset, System::Serial, &rc),
                    Ablation::Full => run_key(*dataset, System::Gopim, &rc),
                    _ => ablation_key(*dataset, *variant, &rc),
                }
            }
            JobRequest::Allocate {
                dataset,
                system,
                config,
            } => {
                let mut h = CanonicalHasher::new();
                h.write_tag("serve.job.alloc/v1");
                run_key(*dataset, *system, &config.to_run_config())?
                    .as_u128()
                    .canonical_hash(&mut h);
                Some(h.finish())
            }
            JobRequest::Predict {
                dataset,
                system,
                config,
            } => {
                let mut h = CanonicalHasher::new();
                h.write_tag("serve.job.predict/v1");
                run_key(*dataset, *system, &config.to_run_config())?
                    .as_u128()
                    .canonical_hash(&mut h);
                Some(h.finish())
            }
        }
    }

    /// Predicted host runtime in nanoseconds (the fair-share queue's
    /// ordering input), from the predictor's closed-form host-cost
    /// model.
    pub fn predicted_cost_ns(&self) -> f64 {
        let m = HostCostModel::default();
        match self {
            JobRequest::Simulate {
                dataset, config, ..
            } => m.simulate_ns(&dataset.stats(), config.micro_batch, config.num_batches),
            JobRequest::Sweep { cells, config } => {
                let stats: Vec<_> = cells.iter().map(|&(d, _)| d.stats()).collect();
                m.sweep_ns(stats.iter(), config.micro_batch, config.num_batches)
            }
            JobRequest::Ablation {
                dataset, config, ..
            } => m.simulate_ns(&dataset.stats(), config.micro_batch, config.num_batches),
            JobRequest::Allocate {
                dataset, config, ..
            } => m.allocate_ns(&dataset.stats(), config.micro_batch),
            JobRequest::Predict { dataset, .. } => m.predict_ns(&dataset.stats()),
        }
    }

    /// Executes the job, producing the same codec bytes the in-process
    /// entry point yields.
    ///
    /// # Errors
    ///
    /// Returns a message for the client's `Failed` reply; today's job
    /// kinds are total over decodable requests, so errors surface only
    /// for semantically impossible inputs.
    pub fn execute(&self) -> Result<Vec<u8>, String> {
        match self {
            JobRequest::Simulate {
                dataset,
                system,
                config,
            } => Ok(run_system_cached(*dataset, *system, &config.to_run_config()).to_bytes()),
            JobRequest::Sweep { cells, config } => {
                if cells.is_empty() {
                    return Err("sweep job with zero cells".to_string());
                }
                Ok(run_systems(cells, &config.to_run_config()).to_bytes())
            }
            JobRequest::Ablation {
                dataset,
                variant,
                config,
            } => Ok(run_ablation_cached(*dataset, *variant, &config.to_run_config()).to_bytes()),
            JobRequest::Allocate {
                dataset,
                system,
                config,
            } => Ok(allocation_plan(*dataset, *system, &config.to_run_config()).to_bytes()),
            JobRequest::Predict {
                dataset,
                system,
                config,
            } => {
                let workload = build_workload(*dataset, *system, &config.to_run_config());
                let run = profiling::profile(&workload);
                Ok((run.stage_times_ns, run.collection_cost_ns).to_bytes())
            }
        }
    }
}

/// The production [`JobHandler`]: decodes [`JobRequest`] payloads and
/// dispatches to the runner/experiments entry points. An undecodable
/// payload prices at the minimum (it will fail fast in `execute` with
/// a typed `Failed` reply rather than being dropped silently).
pub struct CoreJobHandler;

impl JobHandler for CoreJobHandler {
    fn predicted_cost_ns(&self, payload: &[u8]) -> f64 {
        JobRequest::from_bytes(payload)
            .map(|j| j.predicted_cost_ns())
            .unwrap_or(1.0)
    }

    fn cache_key(&self, payload: &[u8]) -> Option<CacheKey> {
        JobRequest::from_bytes(payload)?.cache_key()
    }

    fn execute(&self, payload: &[u8]) -> Result<Vec<u8>, String> {
        match JobRequest::from_bytes(payload) {
            Some(job) => job.execute(),
            None => Err("malformed job payload (not a JobRequest)".to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> JobConfig {
        JobConfig {
            crossbar_budget: Some(300_000),
            ..JobConfig::default()
        }
    }

    #[test]
    fn job_requests_round_trip_through_the_codec() {
        let jobs = [
            JobRequest::Simulate {
                dataset: Dataset::Ddi,
                system: System::Gopim,
                config: quick(),
            },
            JobRequest::Sweep {
                cells: vec![
                    (Dataset::Ddi, System::Serial),
                    (Dataset::Cora, System::Gopim),
                ],
                config: quick(),
            },
            JobRequest::Ablation {
                dataset: Dataset::Ddi,
                variant: Ablation::PlusPp,
                config: quick(),
            },
            JobRequest::Allocate {
                dataset: Dataset::Collab,
                system: System::ReGraphX,
                config: quick(),
            },
            JobRequest::Predict {
                dataset: Dataset::Arxiv,
                system: System::Gopim,
                config: quick(),
            },
        ];
        for job in jobs {
            let bytes = job.to_bytes();
            assert_eq!(JobRequest::from_bytes(&bytes), Some(job));
        }
    }

    #[test]
    fn simulate_key_matches_the_runners_key() {
        let config = quick();
        let job = JobRequest::Simulate {
            dataset: Dataset::Ddi,
            system: System::Gopim,
            config: config.clone(),
        };
        assert_eq!(
            job.cache_key(),
            run_key(Dataset::Ddi, System::Gopim, &config.to_run_config())
        );
    }

    #[test]
    fn job_kinds_have_distinct_keys() {
        let config = quick();
        let alloc = JobRequest::Allocate {
            dataset: Dataset::Ddi,
            system: System::Gopim,
            config: config.clone(),
        };
        let predict = JobRequest::Predict {
            dataset: Dataset::Ddi,
            system: System::Gopim,
            config: config.clone(),
        };
        let sim = JobRequest::Simulate {
            dataset: Dataset::Ddi,
            system: System::Gopim,
            config,
        };
        let keys = [alloc.cache_key(), predict.cache_key(), sim.cache_key()];
        assert!(keys.iter().all(|k| k.is_some()));
        assert_ne!(keys[0], keys[1]);
        assert_ne!(keys[1], keys[2]);
        assert_ne!(keys[0], keys[2]);
    }

    #[test]
    fn sweeps_price_above_their_cells() {
        let config = quick();
        let cell = JobRequest::Simulate {
            dataset: Dataset::Ddi,
            system: System::Gopim,
            config: config.clone(),
        };
        let sweep = JobRequest::Sweep {
            cells: vec![
                (Dataset::Ddi, System::Gopim),
                (Dataset::Products, System::Gopim),
            ],
            config,
        };
        assert!(sweep.predicted_cost_ns() > cell.predicted_cost_ns());
    }

    #[test]
    fn handler_rejects_garbage_payloads_cleanly() {
        let handler = CoreJobHandler;
        assert!(handler.execute(b"definitely not a job").is_err());
        assert_eq!(handler.cache_key(b"garbage"), None);
        assert_eq!(handler.predicted_cost_ns(b""), 1.0);
    }

    #[test]
    fn execute_bytes_equal_in_process_bytes() {
        let config = quick();
        let job = JobRequest::Simulate {
            dataset: Dataset::Cora,
            system: System::Serial,
            config: config.clone(),
        };
        let served = job.execute().unwrap();
        let local =
            crate::runner::run_system(Dataset::Cora, System::Serial, &config.to_run_config())
                .to_bytes();
        assert_eq!(served, local, "job bytes differ from in-process bytes");
    }
}
