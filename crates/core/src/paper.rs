//! The paper's reported numbers, as data.
//!
//! Encoding the published results lets the harness compare *shape*
//! programmatically (who wins, by roughly what factor, which direction
//! a trend goes) instead of eyeballing — see the `shapecheck` binary
//! and EXPERIMENTS.md.

/// Average end-to-end speedup of GoPIM over each system (Fig. 13(a),
/// §VII-B), with the reported min–max range.
pub struct SpeedupClaim {
    /// Baseline name.
    pub baseline: &'static str,
    /// Reported average speedup of GoPIM over the baseline.
    pub average: f64,
    /// Reported range.
    pub range: (f64, f64),
}

/// Fig. 13(a): GoPIM's speedups over the five other systems.
pub const FIG13_SPEEDUPS: [SpeedupClaim; 5] = [
    SpeedupClaim {
        baseline: "Serial",
        average: 727.6,
        range: (10.2, 3454.3),
    },
    SpeedupClaim {
        baseline: "SlimGNN-like",
        average: 2.1,
        range: (1.4, 2.9),
    },
    SpeedupClaim {
        baseline: "ReGraphX",
        average: 2.4,
        range: (1.7, 2.9),
    },
    SpeedupClaim {
        baseline: "ReFlip",
        average: 45.1,
        range: (1.1, 191.4),
    },
    SpeedupClaim {
        baseline: "GoPIM-Vanilla",
        average: 1.5,
        range: (1.1, 2.0),
    },
];

/// Fig. 13(b): average energy-saving factors vs Serial, in system order
/// (SlimGNN-like, ReGraphX, ReFlip, GoPIM-Vanilla, GoPIM).
pub const FIG13_ENERGY_SAVINGS: [(&str, f64); 5] = [
    ("SlimGNN-like", 2.6),
    ("ReGraphX", 2.5),
    ("ReFlip", 1.4),
    ("GoPIM-Vanilla", 3.0),
    ("GoPIM", 4.0),
];

/// Fig. 4: average idle percentage of the Combination-stage crossbar
/// groups (XBS1/3/5) across the six motivation datasets.
pub const FIG04_CO_IDLE_PERCENT: [f64; 3] = [98.47, 97.50, 99.03];

/// §III-A / §III-B: the Aggregation:Combination stage-time ratio — up
/// to 888× (products), average 247× across datasets.
pub const AG_CO_RATIO_MAX: f64 = 888.0;

/// §III-A: the AG:CO ratio averaged across datasets.
pub const AG_CO_RATIO_AVG: f64 = 247.0;

/// Fig. 15: average idle-percentage reductions (points) at micro-batch
/// sizes 32/64/128 on ddi.
pub const FIG15_IDLE_REDUCTIONS: [(usize, f64); 3] = [(32, 46.75), (64, 49.75), (128, 51.75)];

/// Table V: ISU accuracy impact in percentage points, per dataset.
pub const TABLE5_ACCURACY_DELTAS: [(&str, f64); 5] = [
    ("ddi", 4.01),
    ("collab", -0.65),
    ("ppa", 1.07),
    ("proteins", 1.62),
    ("arxiv", -0.20),
];

/// Table VI: ddi crossbar allocation — GoPIM's replica counts in stage
/// order (CO1, AG1, CO2, AG2, LC2, GC2, LC1, GC1) and totals.
pub struct Table6 {
    /// GoPIM's per-stage replica counts.
    pub gopim_replicas: [usize; 8],
    /// Serial's per-stage crossbar counts.
    pub serial_crossbars: [usize; 8],
    /// Serial total crossbars.
    pub serial_total: usize,
    /// GoPIM total crossbars.
    pub gopim_total: usize,
}

/// Table VI values.
pub const TABLE6: Table6 = Table6 {
    gopim_replicas: [59, 364, 60, 616, 61, 487, 61, 484],
    serial_crossbars: [32, 534, 32, 534, 32, 534, 32, 534],
    serial_total: 2_264,
    gopim_total: 1_046_852,
};

/// Table VII: speedups (normalized to Serial) with ML vs profiling
/// estimates, per dataset.
pub const TABLE7: [(&str, f64, f64); 5] = [
    ("ddi", 3454.31, 3469.17),
    ("collab", 36.82, 36.82),
    ("ppa", 10.18, 10.20),
    ("proteins", 71.64, 71.83),
    ("arxiv", 64.78, 66.20),
];

/// §VII-F: Cora speedups over (Serial, SlimGNN-like, ReGraphX, ReFlip).
pub const CORA_SPEEDUPS: [(&str, f64); 4] = [
    ("Serial", 3460.5),
    ("SlimGNN-like", 1.30),
    ("ReGraphX", 1.26),
    ("ReFlip", 1.27),
];

/// Fig. 17(b): products speedup and energy saving over Serial.
pub const PRODUCTS_SPEEDUP: f64 = 5.9;

/// Fig. 17(b): products energy saving over Serial.
pub const PRODUCTS_ENERGY_SAVING: f64 = 1.8;

/// §V-A: the selected predictor's RMSE.
pub const PREDICTOR_RMSE: f64 = 0.0022;

/// §VII-G: prediction accuracy on unseen datasets.
pub const UNSEEN_PREDICTION_ACCURACY: f64 = 0.934;

/// §VI-C: the adaptive update thresholds (dense, sparse).
pub const ADAPTIVE_THETAS: (f64, f64) = (0.5, 0.8);

/// Abstract: headline maxima.
pub const HEADLINE_MAX_SPEEDUP: f64 = 191.0;

/// Abstract: headline energy saving maximum.
pub const HEADLINE_MAX_ENERGY: f64 = 16.1;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_tables_are_internally_consistent() {
        // Table VI serial total matches its per-stage counts.
        let sum: usize = TABLE6.serial_crossbars.iter().sum();
        assert_eq!(sum, TABLE6.serial_total);
        // Fig. 13: GoPIM beats every baseline on average.
        assert!(FIG13_SPEEDUPS.iter().all(|c| c.average > 1.0));
        // The abstract's 191× is ReFlip's range maximum.
        assert!((FIG13_SPEEDUPS[3].range.1 - 191.4).abs() < 1e-9);
    }

    #[test]
    fn our_adaptive_thetas_match_the_paper() {
        assert_eq!(gopim_mapping::DENSE_THETA, ADAPTIVE_THETAS.0);
        assert_eq!(gopim_mapping::SPARSE_THETA, ADAPTIVE_THETAS.1);
    }
}
