//! GoPIM: GCN-oriented pipeline optimization for ReRAM PIM
//! accelerators — a from-scratch reproduction of the HPCA 2025 paper.
//!
//! This crate ties the substrates together into runnable accelerator
//! systems and the paper's experiments:
//!
//! - [`system::System`]: the six evaluated accelerators — `Serial`,
//!   `SlimGNN-like`, `ReGraphX`, `ReFlip`, `GoPIM-Vanilla` and `GoPIM`
//!   — each a combination of mapping strategy, sparsification,
//!   pipelining mode and replica-allocation policy (paper §VII-A).
//! - [`runner`]: builds a workload for a dataset, allocates crossbar
//!   replicas, simulates the pipeline and accounts energy.
//! - [`experiments`]: one module per paper table/figure, returning
//!   typed rows the `gopim-bench` binaries print.
//! - [`jobs`]: the same entry points as self-describing jobs for the
//!   `gopim-serve` job server (`gopim serve`).
//! - [`report`]: plain-text table formatting.
//!
//! # Quickstart
//!
//! ```no_run
//! use gopim::runner::{run_system, RunConfig};
//! use gopim::system::System;
//! use gopim_graph::datasets::Dataset;
//!
//! let config = RunConfig::default();
//! let serial = run_system(Dataset::Ddi, System::Serial, &config);
//! let gopim = run_system(Dataset::Ddi, System::Gopim, &config);
//! let speedup = serial.makespan_ns / gopim.makespan_ns;
//! println!("GoPIM speedup on ddi: {speedup:.1}x");
//! ```

#![warn(missing_docs)]

pub mod benchdiff;
pub mod cli;
pub mod experiments;
pub mod jobs;
pub mod paper;
pub mod report;
pub mod runner;
pub mod system;

pub use runner::{run_system, RunConfig, SystemRun};
pub use system::System;
