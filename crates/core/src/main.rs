//! `gopim` — command-line front end to the GoPIM reproduction.
//!
//! ```text
//! gopim datasets                         # Table III catalog
//! gopim run <dataset> [system] [B]       # one simulation
//! gopim compare <dataset>                # all six systems
//! gopim gantt <dataset> [system] [B]     # schedule timeline
//! gopim --help
//! ```

use gopim::report;
use gopim::runner::{build_workload, run_system, run_systems, RunConfig};
use gopim::system::System;
use gopim_graph::datasets::Dataset;
use gopim_pipeline::schedule::simulate_traced;
use gopim_pipeline::trace::render_gantt;
use gopim_pipeline::PipelineOptions;

const HELP: &str = "\
gopim — GCN-oriented pipeline optimization for PIM accelerators (paper reproduction)

USAGE:
    gopim <COMMAND> [ARGS]

COMMANDS:
    datasets                      list the Table III dataset catalog
    run <dataset> [system] [B]    simulate one system (default GoPIM, B=64)
    compare <dataset> [B]         run all six systems and tabulate
    gantt <dataset> [system] [B]  print the schedule timeline
    custom <edge-file> [B]        run all systems on your own graph
                                  (text edge list: 'u v' per line, # comments)
    faults <dataset> [B]          fault-injection degradation campaign
                                  (env: GOPIM_FAULT_SEED, GOPIM_FAULT_RATES,
                                   GOPIM_FAULT_SPARES)
    serve [addr]                  persistent job server (default
                                  127.0.0.1:4857; ':0' = ephemeral):
                                  simulation/allocation/prediction jobs
                                  over the gopim-serve wire protocol,
                                  fair-share scheduled, cache-backed
                                  (env: GOPIM_SERVE_WORKERS,
                                   GOPIM_SERVE_QUEUE,
                                   GOPIM_SERVE_READ_TIMEOUT_MS)
    lint [--update-baseline]      determinism & hermeticity linter
                                  (ratchets against lint-baseline.json;
                                   GOPIM_LINT_JSON=<path> writes a JSON report)
         [--prune-stale]          drop baseline budget no finding still uses
    lint --locks                  static lock-order/deadlock analysis:
                                  prints the lock-acquisition graph and any
                                  concurrency findings; exit 1 on findings
                                  [--dot | --json] graph dump format
                                  [--root <path>] analyze another workspace
                                  [--check-witness <f>] require a
                                  GOPIM_LOCKDEP_DUMP witness ⊆ static graph
    bench-diff <old> <new>        statistical comparison of two bench record
                                  files (JSON-lines or BENCH_pr*.json):
                                  median±MAD overlap test, each id classified
                                  regression/improvement/neutral
                                  [--json] machine-readable report
                                  [--phase <p>] select a phase tag
                                  [--ratchet] tolerance band + exit 1 on
                                  regression  [--tolerance <frac>]
    bench-diff --trajectory <f..> one column per file across BENCH_pr*.json
    help                          show this message

DATASETS:  ddi collab ppa proteins arxiv products Cora
SYSTEMS:   Serial SlimGNN-like ReGraphX ReFlip GoPIM-Vanilla GoPIM

The paper's full 16 GB chip is assumed; see the gopim-bench binaries
(fig04..fig17, table05..table07) for the per-figure experiments.";

use gopim::cli::{
    parse_dataset, parse_fault_rates, parse_fault_seed, parse_fault_spares, parse_micro_batch,
    parse_serve_addr, parse_system,
};

fn cmd_datasets() {
    let rows: Vec<Vec<String>> = Dataset::ALL
        .iter()
        .map(|d| {
            let s = d.stats();
            let m = d.model();
            vec![
                s.name.to_string(),
                format!("{:?}", s.task),
                s.num_vertices.to_string(),
                s.num_edges.to_string(),
                format!("{:.1}", s.avg_degree),
                s.feature_dim.to_string(),
                m.num_layers.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        report::table(
            &["dataset", "task", "vertices", "edges", "avg deg", "feat dim", "layers"],
            &rows
        )
    );
}

fn cmd_run(dataset: Dataset, system: System, micro_batch: usize) {
    let config = RunConfig {
        micro_batch,
        ..RunConfig::default()
    };
    let serial = run_system(dataset, System::Serial, &config);
    let run = run_system(dataset, system, &config);
    println!(
        "{} on {} (B={micro_batch}): {}  ({} vs Serial, energy saving {:.2}x)",
        run.system_name,
        dataset,
        report::time_ns(run.makespan_ns),
        report::speedup(serial.makespan_ns / run.makespan_ns),
        serial.energy_nj() / run.energy_nj(),
    );
    let rows: Vec<Vec<String>> = run
        .stage_names
        .iter()
        .zip(&run.replicas)
        .zip(&run.footprints)
        .zip(&run.schedule.stages)
        .map(|(((name, &r), &fp), st)| {
            vec![
                name.clone(),
                r.to_string(),
                (r * fp).to_string(),
                report::percent(st.idle_fraction),
            ]
        })
        .collect();
    println!(
        "{}",
        report::table(&["stage", "replicas", "crossbars", "crossbar idle"], &rows)
    );
}

fn cmd_compare(dataset: Dataset, micro_batch: usize) {
    let config = RunConfig {
        micro_batch,
        ..RunConfig::default()
    };
    // The cached sweep path: six systems fan out in parallel, identical
    // cells dedup, and a GOPIM_CACHE directory serves warm reruns.
    let cells: Vec<_> = System::ALL.iter().map(|&s| (dataset, s)).collect();
    let runs = run_systems(&cells, &config);
    let serial_time = runs[0].makespan_ns;
    let serial_energy = runs[0].energy_nj();
    let rows: Vec<Vec<String>> = runs
        .iter()
        .map(|r| {
            vec![
                r.system_name.clone(),
                report::time_ns(r.makespan_ns),
                report::speedup(serial_time / r.makespan_ns),
                format!("{:.2}x", serial_energy / r.energy_nj()),
                r.total_crossbars().to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        report::table(
            &[
                "system",
                "exec time",
                "speedup",
                "energy saving",
                "crossbars"
            ],
            &rows
        )
    );
}

fn cmd_gantt(dataset: Dataset, system: System, micro_batch: usize) {
    let config = RunConfig {
        micro_batch,
        ..RunConfig::default()
    };
    let run = run_system(dataset, system, &config);
    let workload = build_workload(dataset, system, &config);
    let options = if system.pipelined() {
        PipelineOptions {
            intra_batch: true,
            inter_batch: system.inter_batch(),
            num_batches: 1,
        }
    } else {
        PipelineOptions::serial()
    };
    let (_, events) = simulate_traced(&workload, &run.replicas, &options);
    println!(
        "{system} on {dataset} (B={micro_batch}), makespan {} — # compute, w write, . dispatch:",
        report::time_ns(run.makespan_ns)
    );
    print!("{}", render_gantt(&workload, &events, 100));
}

fn cmd_faults(dataset: Dataset, micro_batch: usize) -> Result<(), String> {
    use gopim::experiments::faults::{degradation_table, run, CampaignConfig};

    let env = |name: &str| std::env::var(name).ok();
    let config = CampaignConfig {
        seed: parse_fault_seed(env("GOPIM_FAULT_SEED").as_deref())?,
        fault_rates: parse_fault_rates(env("GOPIM_FAULT_RATES").as_deref())?,
        spare_fraction: parse_fault_spares(env("GOPIM_FAULT_SPARES").as_deref())?,
        micro_batch,
        ..CampaignConfig::default()
    };
    let report = run(dataset, &config);
    println!("{}", degradation_table(&report));
    println!(
        "Retry pays latency for transient faults; remap also re-steers dead crossbars to\n\
         the allocator's spares, trading write time and energy for accuracy."
    );
    Ok(())
}

fn cmd_serve(addr: &str) -> Result<(), String> {
    use gopim::jobs::CoreJobHandler;
    use gopim_serve::{Server, ServerConfig};
    use std::sync::Arc;

    let cfg = ServerConfig::from_env();
    let server = Server::bind(addr, Arc::new(CoreJobHandler), cfg)
        .map_err(|e| format!("serve: cannot bind {addr}: {e}"))?;
    println!(
        "gopim-serve listening on {} — send jobs with the gopim-serve client \
         (see README 'Serving'); Ctrl-C or a protocol Shutdown stops it.",
        server.local_addr()
    );
    server.wait();
    let stats = server.stats();
    println!(
        "gopim-serve drained: {} submitted, {} completed ({} from cache), \
         {} busy-rejected, {} cancelled, {} expired",
        stats.submitted,
        stats.completed,
        stats.cache_served,
        stats.busy_rejections,
        stats.cancelled,
        stats.expired
    );
    Ok(())
}

fn cmd_lint(update_baseline: bool, prune_stale: bool) -> Result<(), String> {
    let cwd = std::env::current_dir().map_err(|e| format!("current dir: {e}"))?;
    let root = gopim_lint::find_workspace_root(&cwd)?;
    let outcome = gopim_lint::lint_workspace(&root)?;
    if let Ok(json_path) = std::env::var(gopim_lint::JSON_ENV) {
        if !json_path.is_empty() {
            std::fs::write(&json_path, outcome.render_json())
                .map_err(|e| format!("write {json_path}: {e}"))?;
            eprintln!("lint: JSON report written to {json_path}");
        }
    }
    print!("{}", outcome.render_human());
    if update_baseline {
        let pairs = gopim_lint::update_baseline(&root, &outcome)?;
        println!(
            "lint: baseline rewritten with {pairs} grandfathered (file, rule) pair(s) at {}",
            root.join(gopim_lint::BASELINE_FILE).display()
        );
        return Ok(());
    }
    if prune_stale {
        let pruned = gopim_lint::prune_baseline(&root, &outcome)?;
        println!("lint: {pruned} stale baseline entr{} pruned", {
            if pruned == 1 {
                "y"
            } else {
                "ies"
            }
        });
    }
    if !outcome.clean() {
        // A distinct exit path from usage errors: findings beyond the
        // baseline fail the run without reprinting the help text.
        std::process::exit(1);
    }
    Ok(())
}

/// `gopim lint --locks`: the static concurrency pass on its own, with
/// graph dumps and the runtime-witness subgraph check.
fn cmd_lint_locks(args: &[String]) -> Result<(), String> {
    let mut dot = false;
    let mut json = false;
    let mut root_arg: Option<String> = None;
    let mut witness_paths: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--dot" => dot = true,
            "--json" => json = true,
            "--root" => {
                root_arg = Some(
                    it.next()
                        .ok_or("lint --locks: --root needs a path")?
                        .clone(),
                );
            }
            "--check-witness" => {
                witness_paths.push(
                    it.next()
                        .ok_or("lint --locks: --check-witness needs a path")?
                        .clone(),
                );
            }
            other => return Err(format!("lint --locks: unknown argument '{other}'")),
        }
    }
    let root = match root_arg {
        Some(p) => std::path::PathBuf::from(p),
        None => {
            let cwd = std::env::current_dir().map_err(|e| format!("current dir: {e}"))?;
            gopim_lint::find_workspace_root(&cwd)?
        }
    };
    let analysis = gopim_lint::lock_graph(&root)?;
    if dot {
        print!("{}", analysis.graph.render_dot());
    } else if json {
        print!("{}", analysis.graph.render_json());
    } else {
        print!("{}", analysis.graph.render_human());
    }
    for f in &analysis.findings {
        println!("{}:{}: [{}] {}", f.file, f.line, f.rule, f.message);
    }
    let mut failed = !analysis.findings.is_empty();
    for path in &witness_paths {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("lint --locks: read {path}: {e}"))?;
        let witness = gopim_lint::lockgraph::parse_witness(&text)
            .map_err(|e| format!("lint --locks: {path}: {e}"))?;
        let problems = gopim_lint::lockgraph::check_witness(&analysis.graph, &witness);
        if problems.is_empty() {
            println!(
                "lint --locks: witness {path} OK ({} classes, {} edges ⊆ static graph)",
                witness.classes.len(),
                witness.edges.len()
            );
        } else {
            failed = true;
            for p in problems {
                println!("lint --locks: witness {path}: {p}");
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
    Ok(())
}

fn cmd_bench_diff(args: &[String]) -> Result<(), String> {
    use gopim::benchdiff::{diff, latest_by_id, parse_records, trajectory, BenchDiffArgs};

    let parsed = BenchDiffArgs::parse(args)?;
    let read = |path: &str| -> Result<String, String> {
        std::fs::read_to_string(path).map_err(|e| format!("bench-diff: cannot read {path}: {e}"))
    };
    if parsed.trajectory {
        let files: Vec<(String, String)> = parsed
            .files
            .iter()
            .map(|p| {
                // Column label: the file stem (BENCH_pr2.json → BENCH_pr2).
                let label = std::path::Path::new(p)
                    .file_stem()
                    .map(|s| s.to_string_lossy().into_owned())
                    .unwrap_or_else(|| p.clone());
                read(p).map(|text| (label, text))
            })
            .collect::<Result<_, _>>()?;
        print!("{}", trajectory(&files)?);
        return Ok(());
    }
    let phase = parsed.phase.as_deref();
    let old_records = parse_records(&read(&parsed.files[0])?)
        .map_err(|e| format!("bench-diff: {}: {e}", parsed.files[0]))?;
    let new_records = parse_records(&read(&parsed.files[1])?)
        .map_err(|e| format!("bench-diff: {}: {e}", parsed.files[1]))?;
    let report = diff(
        &latest_by_id(&old_records, phase),
        &latest_by_id(&new_records, phase),
        parsed.options(),
    );
    if parsed.json {
        print!("{}", report.render_json());
    } else {
        print!("{}", report.render_human());
    }
    if parsed.ratchet && report.regressions() > 0 {
        eprintln!(
            "bench-diff: {} regression(s) beyond the ratchet tolerance",
            report.regressions()
        );
        // Distinct from usage errors: a real regression fails the run
        // without reprinting the help text.
        std::process::exit(1);
    }
    Ok(())
}

fn cmd_custom(path: &str, micro_batch: usize) -> Result<(), String> {
    use gopim::runner::run_system_custom;
    use gopim_graph::datasets::ModelConfig;
    use gopim_graph::io::read_edge_list;

    let file = std::fs::File::open(path).map_err(|e| format!("cannot open '{path}': {e}"))?;
    let graph = read_edge_list(std::io::BufReader::new(file))
        .map_err(|e| format!("parse '{path}': {e}"))?;
    let profile = graph.to_degree_profile();
    println!(
        "loaded '{path}': {} vertices, {} edges, avg degree {:.1} ({})",
        graph.num_vertices(),
        graph.num_edges(),
        graph.avg_degree(),
        if profile.is_sparse() {
            "sparse: θ=80%"
        } else {
            "dense: θ=50%"
        },
    );
    // A default 2-layer, 128-dim GCN.
    let model = ModelConfig {
        num_layers: 2,
        learning_rate: 0.01,
        dropout: 0.0,
        input_channels: 128,
        hidden_channels: 128,
        output_channels: 128,
    };
    let config = RunConfig {
        micro_batch,
        ..RunConfig::default()
    };
    let runs: Vec<_> = System::ALL
        .iter()
        .map(|&s| run_system_custom("custom", &profile, &model, s, &config))
        .collect();
    let serial_time = runs[0].makespan_ns;
    let serial_energy = runs[0].energy_nj();
    let rows: Vec<Vec<String>> = runs
        .iter()
        .map(|r| {
            vec![
                r.system_name.clone(),
                report::time_ns(r.makespan_ns),
                report::speedup(serial_time / r.makespan_ns),
                format!("{:.2}x", serial_energy / r.energy_nj()),
            ]
        })
        .collect();
    println!(
        "{}",
        report::table(&["system", "exec time", "speedup", "energy saving"], &rows)
    );
    Ok(())
}

fn main() {
    // Flushes GOPIM_TRACE / GOPIM_METRICS output when dropped; inert
    // when neither env var is set.
    let telemetry = gopim_obs::attach();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = dispatch(&args);
    if let Err(msg) = result {
        gopim_obs::log_error!("{msg}");
        eprintln!();
        eprintln!("{HELP}");
        drop(telemetry);
        std::process::exit(2);
    }
}

fn dispatch(args: &[String]) -> Result<(), String> {
    let cmd = args.first().map(String::as_str).unwrap_or("help");
    let micro_batch_at = |idx: usize| -> Result<usize, String> {
        parse_micro_batch(args.get(idx).map(String::as_str))
    };
    match cmd {
        "help" | "--help" | "-h" => {
            println!("{HELP}");
            Ok(())
        }
        "datasets" => {
            cmd_datasets();
            Ok(())
        }
        "run" => {
            let dataset = parse_dataset(args.get(1).ok_or("run needs a dataset")?)?;
            let system = match args.get(2) {
                Some(s) => parse_system(s)?,
                None => System::Gopim,
            };
            cmd_run(dataset, system, micro_batch_at(3)?);
            Ok(())
        }
        "compare" => {
            let dataset = parse_dataset(args.get(1).ok_or("compare needs a dataset")?)?;
            cmd_compare(dataset, micro_batch_at(2)?);
            Ok(())
        }
        "gantt" => {
            let dataset = parse_dataset(args.get(1).ok_or("gantt needs a dataset")?)?;
            let system = match args.get(2) {
                Some(s) => parse_system(s)?,
                None => System::Gopim,
            };
            cmd_gantt(dataset, system, micro_batch_at(3)?);
            Ok(())
        }
        "custom" => {
            let path = args.get(1).ok_or("custom needs an edge-list file")?;
            cmd_custom(path, micro_batch_at(2)?)
        }
        "faults" => {
            let dataset = parse_dataset(args.get(1).ok_or("faults needs a dataset")?)?;
            cmd_faults(dataset, micro_batch_at(2)?)
        }
        "serve" => {
            let addr = parse_serve_addr(args.get(1).map(String::as_str))?;
            cmd_serve(&addr)
        }
        "bench-diff" => cmd_bench_diff(&args[1..]),
        "lint" => {
            if args.get(1).map(String::as_str) == Some("--locks") {
                return cmd_lint_locks(&args[2..]);
            }
            let (update, prune) = match args.get(1).map(String::as_str) {
                None => (false, false),
                Some("--update-baseline") => (true, false),
                Some("--prune-stale") => (false, true),
                Some(other) => return Err(format!("lint: unknown argument '{other}'")),
            };
            cmd_lint(update, prune)
        }
        other => Err(format!("unknown command '{other}'")),
    }
}
