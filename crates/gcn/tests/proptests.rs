//! Property-based tests for the GCN training engine (gopim-testkit).

use gopim_gcn::aggregate::NormalizedAdjacency;
use gopim_gcn::metrics::ConfusionMatrix;
use gopim_gcn::GcnModel;
use gopim_graph::generate::erdos_renyi;
use gopim_linalg::init::xavier_uniform;
use gopim_linalg::ops::{add, scale};
use gopim_linalg::Matrix;
use gopim_testkit::prop::{check_with, Config};

#[test]
fn aggregation_is_linear() {
    check_with("aggregation_is_linear", Config::cases(16), |d| {
        let n = d.draw("n", 4usize..60);
        let avg = d.draw("avg", 1.0f64..8.0);
        let seed = d.draw("seed", 0u64..100);
        let alpha = d.draw("alpha", -3.0f64..3.0);
        let g = erdos_renyi(n, avg, seed);
        let norm = NormalizedAdjacency::new(&g);
        let x = xavier_uniform(n, 3, seed ^ 1);
        let y = xavier_uniform(n, 3, seed ^ 2);
        // Â(x + αy) == Âx + αÂy
        let left = norm.apply(&g, &add(&x, &scale(&y, alpha)));
        let right = add(&norm.apply(&g, &x), &scale(&norm.apply(&g, &y), alpha));
        for (a, b) in left.as_slice().iter().zip(right.as_slice()) {
            assert!((a - b).abs() < 1e-9);
        }
    });
}

#[test]
fn forward_is_deterministic_and_shaped() {
    check_with(
        "forward_is_deterministic_and_shaped",
        Config::cases(16),
        |d| {
            let n = d.draw("n", 4usize..50);
            let seed = d.draw("seed", 0u64..50);
            let g = erdos_renyi(n, 3.0, seed);
            let norm = NormalizedAdjacency::new(&g);
            let x = xavier_uniform(n, 5, seed);
            let model = GcnModel::new(&[5, 7, 4], 0.01, seed);
            let a = model.forward(&g, &norm, &x);
            let b = model.forward(&g, &norm, &x);
            assert_eq!(a.shape(), (n, 4));
            assert_eq!(a, b);
        },
    );
}

#[test]
fn gradients_match_backward_effect() {
    check_with("gradients_match_backward_effect", Config::cases(16), |d| {
        let n = d.draw("n", 4usize..30);
        let seed = d.draw("seed", 0u64..50);
        // gradients() + apply_gradients() must equal backward().
        let g = erdos_renyi(n, 3.0, seed);
        let norm = NormalizedAdjacency::new(&g);
        let x = xavier_uniform(n, 4, seed);
        let delta = xavier_uniform(n, 3, seed ^ 9);
        let mut m1 = GcnModel::new(&[4, 6, 3], 0.05, seed);
        let mut m2 = m1.clone();

        let caches1 = m1.forward_with_caches(&g, &norm, &x, None, 0);
        m1.backward(&g, &norm, &caches1, delta.clone());

        let caches2 = m2.forward_with_caches(&g, &norm, &x, None, 0);
        let grads = m2.gradients(&g, &norm, &caches2, delta);
        m2.apply_gradients(&grads);

        let out1 = m1.forward(&g, &norm, &x);
        let out2 = m2.forward(&g, &norm, &x);
        for (a, b) in out1.as_slice().iter().zip(out2.as_slice()) {
            assert!((a - b).abs() < 1e-12);
        }
    });
}

#[test]
fn confusion_matrix_totals_match_inputs() {
    check_with(
        "confusion_matrix_totals_match_inputs",
        Config::cases(16),
        |d| {
            let labels = d.vec("labels", 1usize..80, |d| d.draw("l", 0u32..4));
            let pred_shift = d.draw("pred_shift", 0u32..4);
            let n = labels.len();
            let mut logits = Matrix::zeros(n, 4);
            for (i, &l) in labels.iter().enumerate() {
                logits[(i, ((l + pred_shift) % 4) as usize)] = 1.0;
            }
            let cm = ConfusionMatrix::from_logits(&logits, &labels);
            let total: usize = (0..4)
                .flat_map(|a| (0..4).map(move |p| (a, p)))
                .map(|(a, p)| cm.count(a, p))
                .sum();
            assert_eq!(total, n);
            if pred_shift == 0 {
                assert_eq!(cm.accuracy(), 1.0);
            } else {
                assert_eq!(cm.accuracy(), 0.0);
            }
        },
    );
}
