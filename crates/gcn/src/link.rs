//! Link-prediction training (the task type of the paper's ddi, collab
//! and ppa datasets, Table III).
//!
//! A GCN encoder produces vertex embeddings; an inner-product decoder
//! scores candidate edges; training minimizes binary cross-entropy over
//! positive (held-in) edges and sampled negatives; evaluation reports
//! Hits@K over held-out positives against sampled negatives — the
//! OGB-style protocol behind the paper's Table V link numbers. ISU's
//! staleness semantics plug in exactly as for node classification.

use gopim_graph::CsrGraph;
use gopim_linalg::Matrix;
use gopim_mapping::SelectivePolicy;
use gopim_rng::rngs::SmallRng;
use gopim_rng::seq::SliceRandom;
use gopim_rng::{Rng, SeedableRng};

use crate::aggregate::NormalizedAdjacency;
use crate::model::GcnModel;
use crate::selective::StaleFeatureCache;
use crate::train::synthetic_features;

/// A train/test edge split: test positives are removed from the
/// message-passing graph (no leakage).
#[derive(Debug, Clone)]
pub struct EdgeSplit {
    /// The graph visible to the encoder (training edges only).
    pub train_graph: CsrGraph,
    /// Training positives.
    pub train_pos: Vec<(u32, u32)>,
    /// Held-out positives.
    pub test_pos: Vec<(u32, u32)>,
}

/// Splits a graph's edges, holding out `test_fraction` as test
/// positives.
///
/// # Panics
///
/// Panics if `test_fraction ∉ (0, 1)` or the graph has no edges.
pub fn split_edges(graph: &CsrGraph, test_fraction: f64, seed: u64) -> EdgeSplit {
    assert!(
        test_fraction > 0.0 && test_fraction < 1.0,
        "test fraction must be in (0, 1)"
    );
    let mut edges: Vec<(u32, u32)> = graph.edges().collect();
    assert!(!edges.is_empty(), "graph has no edges to split");
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x11_4b);
    edges.shuffle(&mut rng);
    let n_test = ((edges.len() as f64) * test_fraction).round() as usize;
    let n_test = n_test.clamp(1, edges.len() - 1);
    let test_pos = edges[..n_test].to_vec();
    let train_pos = edges[n_test..].to_vec();
    let train_graph = CsrGraph::from_edges(graph.num_vertices(), &train_pos);
    EdgeSplit {
        train_graph,
        train_pos,
        test_pos,
    }
}

/// Options for link-prediction training.
#[derive(Debug, Clone)]
pub struct LinkTrainOptions {
    /// Embedding width of every GCN layer.
    pub hidden: usize,
    /// GCN layer count.
    pub num_layers: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Negatives sampled per positive during training.
    pub negatives_per_positive: usize,
    /// ISU policy; `None` = every vertex fresh every epoch.
    pub selective: Option<SelectivePolicy>,
    /// RNG seed.
    pub seed: u64,
}

impl LinkTrainOptions {
    /// A fast configuration for unit tests.
    pub fn quick_test() -> Self {
        LinkTrainOptions {
            hidden: 16,
            num_layers: 2,
            epochs: 30,
            learning_rate: 0.02,
            negatives_per_positive: 1,
            selective: None,
            seed: 1,
        }
    }

    /// The configuration used by the experiment binaries.
    pub fn experiment() -> Self {
        LinkTrainOptions {
            hidden: 48,
            num_layers: 2,
            epochs: 60,
            learning_rate: 0.01,
            negatives_per_positive: 1,
            selective: None,
            seed: 11,
        }
    }
}

/// Outcome of a link-prediction run.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkReport {
    /// Hits@20 over held-out positives vs 100 sampled negatives each
    /// (the OGB ddi metric family).
    pub hits_at_20: f64,
    /// Final-epoch training loss (BCE).
    pub final_loss: f64,
}

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(&x, &y)| x * y).sum()
}

/// Trains a GCN encoder + inner-product decoder on `split` and reports
/// Hits@20.
///
/// # Panics
///
/// Panics if the split is empty or options are degenerate.
pub fn train_link_predictor(split: &EdgeSplit, options: &LinkTrainOptions) -> LinkReport {
    let graph = &split.train_graph;
    let n = graph.num_vertices();
    assert!(n > 1, "need at least two vertices");
    assert!(!split.train_pos.is_empty(), "no training edges");
    let mut rng = SmallRng::seed_from_u64(options.seed ^ 0x114b);

    // Structural-noise features: link prediction has no labels to leak,
    // so features are random (the encoder must rely on the graph).
    let x = synthetic_features(
        &vec![0u32; n],
        1,
        options.hidden.min(15),
        options.seed ^ 0xfea7,
    );
    let mut dims = vec![x.cols()];
    dims.extend(std::iter::repeat_n(options.hidden, options.num_layers));

    let norm = NormalizedAdjacency::new(graph);
    let mut model = GcnModel::new(&dims, options.learning_rate, options.seed);
    let mut cache = options.selective.map(|policy| {
        let profile = graph.to_degree_profile();
        let important = policy.important_vertices(&profile);
        StaleFeatureCache::new(options.num_layers, important, policy)
    });

    let mut final_loss = 0.0;
    for epoch in 0..options.epochs {
        let caches = model.forward_with_caches(graph, &norm, &x, cache.as_mut(), epoch);
        let h = caches.output().clone();
        // BCE over positives and sampled negatives; accumulate ∂L/∂h.
        let mut delta = Matrix::zeros(n, h.cols());
        let mut loss = 0.0f64;
        let mut count = 0.0f64;
        let mut accumulate = |u: usize, v: usize, label: f64, h: &Matrix, delta: &mut Matrix| {
            let s = dot(h.row(u), h.row(v));
            let p = sigmoid(s);
            loss -= if label > 0.5 {
                p.max(1e-12).ln()
            } else {
                (1.0 - p).max(1e-12).ln()
            };
            count += 1.0;
            let g = p - label; // dL/ds
            for k in 0..h.cols() {
                delta[(u, k)] += g * h[(v, k)];
                delta[(v, k)] += g * h[(u, k)];
            }
        };
        for &(u, v) in &split.train_pos {
            accumulate(u as usize, v as usize, 1.0, &h, &mut delta);
            for _ in 0..options.negatives_per_positive {
                let nu = rng.gen_range(0..n);
                let nv = rng.gen_range(0..n);
                if nu != nv && !graph.has_edge(nu, nv) {
                    accumulate(nu, nv, 0.0, &h, &mut delta);
                }
            }
        }
        // Mean gradient.
        for g in delta.as_mut_slice() {
            *g /= count.max(1.0);
        }
        final_loss = loss / count.max(1.0);
        model.backward(graph, &norm, &caches, delta);
    }

    // Evaluation: Hits@20 vs 100 random negatives per test positive.
    let caches = model.forward_with_caches(graph, &norm, &x, cache.as_mut(), options.epochs);
    let h = caches.output();
    let mut eval_rng = SmallRng::seed_from_u64(options.seed ^ 0xe7a1);
    let mut neg_scores = Vec::with_capacity(100);
    for _ in 0..100 {
        let nu = eval_rng.gen_range(0..n);
        let nv = eval_rng.gen_range(0..n);
        neg_scores.push(dot(h.row(nu), h.row(nv)));
    }
    neg_scores.sort_by(|a, b| b.total_cmp(a));
    let threshold = neg_scores.get(19).copied().unwrap_or(f64::NEG_INFINITY);
    let hits = split
        .test_pos
        .iter()
        .filter(|&&(u, v)| dot(h.row(u as usize), h.row(v as usize)) > threshold)
        .count();
    LinkReport {
        hits_at_20: hits as f64 / split.test_pos.len() as f64,
        final_loss,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gopim_graph::generate::planted_partition;

    fn task(seed: u64) -> EdgeSplit {
        let (g, _) = planted_partition(150, 3, 10.0, 8.0, seed);
        split_edges(&g, 0.15, seed)
    }

    #[test]
    fn split_removes_test_edges_from_training_graph() {
        let split = task(1);
        for &(u, v) in &split.test_pos {
            assert!(!split.train_graph.has_edge(u as usize, v as usize));
        }
        split.train_graph.validate().unwrap();
        assert_eq!(
            split.train_pos.len() + split.test_pos.len(),
            split.train_graph.num_edges() + split.test_pos.len()
        );
    }

    #[test]
    fn link_predictor_beats_random_ranking() {
        // Random scoring would land ~20/100 = 0.2 hits@20. Any single
        // seed wobbles around that bar, so check the mean of three.
        let mut hits = 0.0;
        for seed in [1, 2, 9] {
            let report = train_link_predictor(&task(seed), &LinkTrainOptions::quick_test());
            assert!(report.final_loss < 0.8, "seed {seed}: {report:?}");
            hits += report.hits_at_20;
        }
        assert!(hits / 3.0 > 0.28, "mean hits@20 {}", hits / 3.0);
    }

    #[test]
    fn isu_link_accuracy_stays_close_to_vanilla() {
        let split = task(3);
        let vanilla = train_link_predictor(&split, &LinkTrainOptions::quick_test());
        let mut opts = LinkTrainOptions::quick_test();
        opts.selective = Some(SelectivePolicy::with_theta(0.5, 20));
        let isu = train_link_predictor(&split, &opts);
        assert!(
            vanilla.hits_at_20 - isu.hits_at_20 < 0.2,
            "vanilla {} vs isu {}",
            vanilla.hits_at_20,
            isu.hits_at_20
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let split = task(4);
        let a = train_link_predictor(&split, &LinkTrainOptions::quick_test());
        let b = train_link_predictor(&split, &LinkTrainOptions::quick_test());
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "test fraction")]
    fn bad_fraction_rejected() {
        let (g, _) = planted_partition(20, 2, 4.0, 4.0, 5);
        split_edges(&g, 1.5, 5);
    }
}
