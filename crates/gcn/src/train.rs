//! Training driver for the accuracy experiments (Table V, Fig. 16).

use gopim_graph::CsrGraph;
use gopim_linalg::init::uniform;
use gopim_linalg::loss::accuracy;
use gopim_linalg::Matrix;
use gopim_mapping::SelectivePolicy;
use gopim_rng::rngs::SmallRng;
use gopim_rng::{Rng, SeedableRng};

use crate::aggregate::NormalizedAdjacency;
use crate::model::GcnModel;
use crate::selective::StaleFeatureCache;

/// Cross-entropy on masked rows, returning the loss and the full-size
/// output gradient (zero on unmasked rows).
fn masked_ce(logits: &Matrix, labels: &[u32], mask: &[bool]) -> (f64, Matrix) {
    let rows: Vec<usize> = (0..labels.len()).filter(|&v| mask[v]).collect();
    let mut sub = Matrix::zeros(rows.len(), logits.cols());
    let mut sub_labels = Vec::with_capacity(rows.len());
    for (i, &v) in rows.iter().enumerate() {
        sub.row_mut(i).copy_from_slice(logits.row(v));
        sub_labels.push(labels[v]);
    }
    let (loss, grad) = gopim_linalg::loss::softmax_cross_entropy(&sub, &sub_labels);
    let mut delta = Matrix::zeros(logits.rows(), logits.cols());
    for (i, &v) in rows.iter().enumerate() {
        delta.row_mut(v).copy_from_slice(grad.row(i));
    }
    (loss, delta)
}

/// Options for one training run.
#[derive(Debug, Clone)]
pub struct TrainOptions {
    /// Hidden width (the numeric experiments scale the paper's 256 down
    /// to keep dense CPU training tractable; see DESIGN.md §2).
    pub hidden: usize,
    /// GCN layer count.
    pub num_layers: usize,
    /// Epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Fraction of vertices in the training split.
    pub train_fraction: f64,
    /// ISU policy; `None` trains with every vertex fresh every epoch
    /// (the GoPIM-Vanilla numeric behaviour).
    pub selective: Option<SelectivePolicy>,
    /// Gradient delay in epochs (inter-batch pipelining's bounded
    /// staleness, §IV-A: the next batch starts before the previous
    /// weight update lands). 0 = synchronous.
    pub weight_staleness: usize,
    /// Vertices stranded on crossbars the fault layer killed: their
    /// cached features stop refreshing at `freeze_epoch`. Empty =
    /// the fault-free path, bit-identical to a build without the
    /// fault layer.
    pub frozen_vertices: Vec<u32>,
    /// Epoch at which `frozen_vertices` freeze (the simulated instant
    /// the crossbars died).
    pub freeze_epoch: usize,
    /// RNG seed (weights, split, features).
    pub seed: u64,
}

impl gopim_cache::CanonicalHash for TrainOptions {
    fn canonical_hash(&self, h: &mut gopim_cache::CanonicalHasher) {
        h.write_tag("gcn.train_options/v1");
        h.write_usize(self.hidden);
        h.write_usize(self.num_layers);
        h.write_usize(self.epochs);
        h.write_f64(self.learning_rate);
        h.write_f64(self.train_fraction);
        self.selective.canonical_hash(h);
        h.write_usize(self.weight_staleness);
        self.frozen_vertices.canonical_hash(h);
        h.write_usize(self.freeze_epoch);
        h.write_u64(self.seed);
    }
}

impl TrainOptions {
    /// A fast configuration for unit tests.
    pub fn quick_test() -> Self {
        TrainOptions {
            hidden: 16,
            num_layers: 2,
            epochs: 30,
            learning_rate: 0.02,
            train_fraction: 0.6,
            selective: None,
            weight_staleness: 0,
            frozen_vertices: Vec::new(),
            freeze_epoch: 0,
            seed: 1,
        }
    }

    /// The configuration used by the paper-scale accuracy experiments.
    pub fn experiment() -> Self {
        TrainOptions {
            hidden: 48,
            num_layers: 3,
            epochs: 80,
            learning_rate: 0.01,
            train_fraction: 0.6,
            selective: None,
            weight_staleness: 0,
            frozen_vertices: Vec::new(),
            freeze_epoch: 0,
            seed: 11,
        }
    }
}

impl Default for TrainOptions {
    fn default() -> Self {
        TrainOptions::experiment()
    }
}

/// Outcome of a training run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainReport {
    /// Accuracy on the training split.
    pub train_accuracy: f64,
    /// Accuracy on the held-out split (the paper's Table V numbers).
    pub test_accuracy: f64,
    /// Final-epoch training loss.
    pub final_loss: f64,
}

/// Builds node features: a noisy community indicator (so the task is
/// learnable, mirroring informative real-world features) plus random
/// dimensions. The indicator is deliberately weak relative to the
/// noise so accuracies land below the ceiling and θ-sensitivity is
/// visible (Fig. 16).
pub fn synthetic_features(
    labels: &[u32],
    num_classes: usize,
    extra_dims: usize,
    seed: u64,
) -> Matrix {
    let n = labels.len();
    let mut x = uniform(n, num_classes + extra_dims, 0.8, seed);
    for (v, &l) in labels.iter().enumerate() {
        x[(v, l as usize)] += 0.55;
    }
    x
}

/// Trains a GCN on `graph` with community `labels` and reports
/// accuracies.
///
/// # Panics
///
/// Panics if `labels.len() != graph.num_vertices()` or the graph is
/// empty.
pub fn train_gcn(graph: &CsrGraph, labels: &[u32], options: &TrainOptions) -> TrainReport {
    let n = graph.num_vertices();
    assert!(n > 0, "empty graph");
    assert_eq!(labels.len(), n, "one label per vertex");
    let num_classes = (labels.iter().copied().max().unwrap_or(0) + 1) as usize;

    let x = synthetic_features(labels, num_classes, 8, options.seed ^ 0xfea7);
    let mut dims = vec![x.cols()];
    dims.extend(std::iter::repeat_n(options.hidden, options.num_layers - 1));
    dims.push(num_classes);

    let mut rng = SmallRng::seed_from_u64(options.seed ^ 0x5eed);
    let train_mask: Vec<bool> = (0..n)
        .map(|_| rng.gen::<f64>() < options.train_fraction)
        .collect();
    // Guarantee both splits are non-empty.
    let mut train_mask = train_mask;
    train_mask[0] = true;
    if let Some(m) = train_mask.iter_mut().next_back() {
        *m = false;
    }

    let norm = NormalizedAdjacency::new(graph);
    let mut model = GcnModel::new(&dims, options.learning_rate, options.seed);
    // A cache is needed for selective updating and/or fault-frozen
    // vertices; with neither, the no-cache path is taken untouched
    // (the fault layer's zero-cost-when-disabled guarantee).
    let mut cache = if options.selective.is_some() || !options.frozen_vertices.is_empty() {
        let policy = options
            .selective
            .unwrap_or_else(SelectivePolicy::update_all);
        let profile = graph.to_degree_profile();
        let important = policy.important_vertices(&profile);
        Some(StaleFeatureCache::new(
            options.num_layers,
            important,
            policy,
        ))
    } else {
        None
    };

    // Bounded staleness: gradients are computed against a weight
    // snapshot `weight_staleness` epochs old, then applied to the
    // current weights (the asynchrony inter-batch pipelining creates).
    let mut snapshots: std::collections::VecDeque<GcnModel> = std::collections::VecDeque::new();
    let mut final_loss = 0.0;
    for epoch in 0..options.epochs {
        if !options.frozen_vertices.is_empty() && epoch == options.freeze_epoch {
            if let Some(c) = cache.as_mut() {
                c.freeze(&options.frozen_vertices);
            }
        }
        if options.weight_staleness == 0 {
            final_loss =
                model.train_epoch(graph, &norm, &x, labels, &train_mask, cache.as_mut(), epoch);
        } else {
            snapshots.push_back(model.clone());
            if snapshots.len() > options.weight_staleness {
                // lint:allow(no-panic-in-lib): guarded by the len() > weight_staleness check above
                let stale = snapshots.pop_front().expect("non-empty queue");
                let caches = stale.forward_with_caches(graph, &norm, &x, cache.as_mut(), epoch);
                let (loss, delta) = masked_ce(caches.output(), labels, &train_mask);
                final_loss = loss;
                let grads = stale.gradients(graph, &norm, &caches, delta);
                model.apply_gradients(&grads);
            }
        }
    }

    let logits = model.forward(graph, &norm, &x);
    let split_acc = |want_train: bool| -> f64 {
        let rows: Vec<usize> = (0..n).filter(|&v| train_mask[v] == want_train).collect();
        let mut sub = Matrix::zeros(rows.len(), logits.cols());
        let mut sub_labels = Vec::with_capacity(rows.len());
        for (i, &v) in rows.iter().enumerate() {
            sub.row_mut(i).copy_from_slice(logits.row(v));
            sub_labels.push(labels[v]);
        }
        accuracy(&sub, &sub_labels)
    };
    TrainReport {
        train_accuracy: split_acc(true),
        test_accuracy: split_acc(false),
        final_loss,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gopim_graph::generate::planted_partition;

    #[test]
    fn learns_dense_planted_partition() {
        let (g, labels) = planted_partition(240, 3, 14.0, 8.0, 2);
        let report = train_gcn(&g, &labels, &TrainOptions::quick_test());
        assert!(report.test_accuracy > 0.7, "{report:?}");
        assert!(report.train_accuracy >= report.test_accuracy - 0.15);
    }

    #[test]
    fn selective_updating_costs_little_accuracy_on_dense_graphs() {
        let (g, labels) = planted_partition(240, 3, 16.0, 8.0, 3);
        let vanilla = train_gcn(&g, &labels, &TrainOptions::quick_test());
        let mut opts = TrainOptions::quick_test();
        opts.selective = Some(SelectivePolicy::with_theta(0.5, 20));
        let isu = train_gcn(&g, &labels, &opts);
        // The paper's claim: accuracy impact within ~±4 % at adaptive θ.
        assert!(
            (vanilla.test_accuracy - isu.test_accuracy).abs() < 0.12,
            "vanilla {} vs isu {}",
            vanilla.test_accuracy,
            isu.test_accuracy
        );
    }

    #[test]
    fn aggressive_theta_on_sparse_graph_hurts_more_than_adaptive() {
        let (g, labels) = planted_partition(240, 3, 4.0, 10.0, 4);
        let adaptive = {
            let mut o = TrainOptions::quick_test();
            o.selective = Some(SelectivePolicy::with_theta(0.8, 20));
            train_gcn(&g, &labels, &o)
        };
        let aggressive = {
            let mut o = TrainOptions::quick_test();
            o.selective = Some(SelectivePolicy::with_theta(0.1, 20));
            train_gcn(&g, &labels, &o)
        };
        assert!(
            adaptive.test_accuracy >= aggressive.test_accuracy - 0.05,
            "adaptive {} vs aggressive {}",
            adaptive.test_accuracy,
            aggressive.test_accuracy
        );
    }

    #[test]
    fn frozen_vertices_degrade_accuracy_gracefully() {
        let (g, labels) = planted_partition(240, 3, 14.0, 8.0, 2);
        let clean = train_gcn(&g, &labels, &TrainOptions::quick_test());
        // Freeze a third of the graph early: training must still run
        // to completion and keep some signal, but lose accuracy.
        let mut opts = TrainOptions::quick_test();
        opts.frozen_vertices = (0..80).collect();
        opts.freeze_epoch = 2;
        let hurt = train_gcn(&g, &labels, &opts);
        assert!(hurt.test_accuracy <= clean.test_accuracy + 1e-9);
        assert!(
            hurt.test_accuracy > 1.0 / 3.0,
            "worse than chance: {hurt:?}"
        );
        // Empty frozen set is bit-identical to the fault-free path.
        let mut noop = TrainOptions::quick_test();
        noop.frozen_vertices = Vec::new();
        noop.freeze_epoch = 7;
        assert_eq!(train_gcn(&g, &labels, &noop), clean);
    }

    #[test]
    fn bounded_staleness_barely_moves_accuracy() {
        // The inter-batch pipeline's 1-epoch gradient delay (§IV-A)
        // must be accuracy-neutral — that is what lets GoPIM overlap
        // batches at all.
        let (g, labels) = planted_partition(240, 3, 12.0, 8.0, 9);
        let mut sync_opts = TrainOptions::quick_test();
        sync_opts.epochs = 40;
        let sync = train_gcn(&g, &labels, &sync_opts);
        let mut stale_opts = sync_opts.clone();
        stale_opts.weight_staleness = 1;
        stale_opts.epochs = 41; // one warm-up epoch fills the queue
        let stale = train_gcn(&g, &labels, &stale_opts);
        assert!(
            (sync.test_accuracy - stale.test_accuracy).abs() < 0.1,
            "sync {} vs stale {}",
            sync.test_accuracy,
            stale.test_accuracy
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let (g, labels) = planted_partition(120, 2, 8.0, 6.0, 5);
        let a = train_gcn(&g, &labels, &TrainOptions::quick_test());
        let b = train_gcn(&g, &labels, &TrainOptions::quick_test());
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "one label per vertex")]
    fn label_mismatch_rejected() {
        let (g, _) = planted_partition(30, 2, 4.0, 4.0, 6);
        train_gcn(&g, &[0, 1], &TrainOptions::quick_test());
    }
}
