//! Stale-feature semantics of ISU's selective vertex updating.
//!
//! On the accelerator, the *Aggregation* stage reads combined features
//! from ReRAM crossbars; ISU refreshes important vertices' rows every
//! epoch and the rest every `stale_period` epochs (§VI-A). Numerically
//! this means aggregation sees a stale copy of a less-important
//! vertex's combined features between refreshes. [`StaleFeatureCache`]
//! reproduces that, per layer.

use gopim_linalg::Matrix;
use gopim_mapping::SelectivePolicy;

/// Per-layer cache of the crossbar-resident combined features.
#[derive(Debug, Clone)]
pub struct StaleFeatureCache {
    /// Cached feature matrix per layer (what the crossbar holds).
    layers: Vec<Option<Matrix>>,
    /// Importance mask per vertex.
    important: Vec<bool>,
    /// Vertices whose crossbar rows can no longer be written (the
    /// fault layer's dead groups): refreshes skip them forever.
    frozen: Vec<bool>,
    policy: SelectivePolicy,
}

impl StaleFeatureCache {
    /// Creates a cache for `num_layers` layers with an importance mask.
    pub fn new(num_layers: usize, important: Vec<bool>, policy: SelectivePolicy) -> Self {
        let frozen = vec![false; important.len()];
        StaleFeatureCache {
            layers: vec![None; num_layers],
            important,
            frozen,
            policy,
        }
    }

    /// Marks `vertices` as frozen: their cached rows are never
    /// refreshed again, modeling feature rows stranded on a dead
    /// crossbar. Out-of-range ids are ignored; freezing is permanent
    /// and idempotent.
    pub fn freeze(&mut self, vertices: &[u32]) {
        for &v in vertices {
            if let Some(f) = self.frozen.get_mut(v as usize) {
                *f = true;
            }
        }
    }

    /// Number of currently frozen vertices.
    pub fn num_frozen(&self) -> usize {
        self.frozen.iter().filter(|&&f| f).count()
    }

    /// Number of vertices marked unimportant (never refreshed eagerly).
    pub fn num_stale_candidates(&self) -> usize {
        self.important.iter().filter(|&&i| !i).count()
    }

    /// Applies the update schedule for `epoch` at `layer`: refreshes
    /// the cached rows that update this epoch and returns the matrix
    /// the aggregation actually sees, along with a mask of rows that
    /// were served stale (no gradient flows through those).
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of range or `fresh` has the wrong row
    /// count.
    pub fn observe(&mut self, layer: usize, epoch: usize, fresh: &Matrix) -> (Matrix, Vec<bool>) {
        assert!(layer < self.layers.len(), "layer {layer} out of range");
        assert_eq!(
            fresh.rows(),
            self.important.len(),
            "one row per vertex expected"
        );
        let slot = &mut self.layers[layer];
        match slot {
            None => {
                // First epoch: everything is written.
                *slot = Some(fresh.clone());
                (fresh.clone(), vec![false; fresh.rows()])
            }
            Some(cached) => {
                let mut stale = vec![false; fresh.rows()];
                for (v, flag) in stale.iter_mut().enumerate() {
                    if !self.frozen[v] && self.policy.updates_in_epoch(self.important[v], epoch) {
                        cached.row_mut(v).copy_from_slice(fresh.row(v));
                    } else {
                        *flag = true;
                    }
                }
                (cached.clone(), stale)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> SelectivePolicy {
        SelectivePolicy::with_theta(0.5, 4)
    }

    #[test]
    fn first_observation_writes_everything() {
        let mut cache = StaleFeatureCache::new(1, vec![true, false], policy());
        let fresh = Matrix::from_rows(&[&[1.0], &[2.0]]);
        let (seen, stale) = cache.observe(0, 0, &fresh);
        assert_eq!(seen, fresh);
        assert_eq!(stale, vec![false, false]);
    }

    #[test]
    fn unimportant_rows_go_stale_between_refreshes() {
        let mut cache = StaleFeatureCache::new(1, vec![true, false], policy());
        let e0 = Matrix::from_rows(&[&[1.0], &[2.0]]);
        cache.observe(0, 0, &e0);
        let e1 = Matrix::from_rows(&[&[10.0], &[20.0]]);
        let (seen, stale) = cache.observe(0, 1, &e1);
        // Important row fresh, unimportant row still the epoch-0 value.
        assert_eq!(seen[(0, 0)], 10.0);
        assert_eq!(seen[(1, 0)], 2.0);
        assert_eq!(stale, vec![false, true]);
    }

    #[test]
    fn stale_rows_refresh_on_period() {
        let mut cache = StaleFeatureCache::new(1, vec![false, false], policy());
        cache.observe(0, 0, &Matrix::from_rows(&[&[1.0], &[1.0]]));
        cache.observe(0, 1, &Matrix::from_rows(&[&[2.0], &[2.0]]));
        // Epoch 4 is a refresh epoch (period 4).
        let (seen, stale) = cache.observe(0, 4, &Matrix::from_rows(&[&[5.0], &[5.0]]));
        assert_eq!(seen[(0, 0)], 5.0);
        assert!(stale.iter().all(|&s| !s));
    }

    #[test]
    fn frozen_rows_never_refresh_even_on_period() {
        let mut cache = StaleFeatureCache::new(1, vec![true, true], policy());
        cache.observe(0, 0, &Matrix::from_rows(&[&[1.0], &[2.0]]));
        cache.freeze(&[1, 99]); // out-of-range id ignored
        assert_eq!(cache.num_frozen(), 1);
        // Row 0 (important, live) refreshes; row 1 is frozen at its
        // epoch-0 value — even at a period-refresh epoch.
        let (seen, stale) = cache.observe(0, 4, &Matrix::from_rows(&[&[10.0], &[20.0]]));
        assert_eq!(seen[(0, 0)], 10.0);
        assert_eq!(seen[(1, 0)], 2.0);
        assert_eq!(stale, vec![false, true]);
    }

    #[test]
    fn empty_freeze_is_a_no_op() {
        let mk = || StaleFeatureCache::new(1, vec![true, false], policy());
        let mut plain = mk();
        let mut frozen = mk();
        frozen.freeze(&[]);
        for epoch in 0..6 {
            let fresh = Matrix::from_rows(&[&[epoch as f64], &[epoch as f64 + 0.5]]);
            let a = plain.observe(0, epoch, &fresh);
            let b = frozen.observe(0, epoch, &fresh);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn layers_are_independent() {
        let mut cache = StaleFeatureCache::new(2, vec![false], policy());
        cache.observe(0, 0, &Matrix::from_rows(&[&[1.0]]));
        // Layer 1 first observed at epoch 1: must be fully written.
        let (seen, stale) = cache.observe(1, 1, &Matrix::from_rows(&[&[7.0]]));
        assert_eq!(seen[(0, 0)], 7.0);
        assert_eq!(stale, vec![false]);
    }
}
