//! The GCN model (the paper's Eqs. 1–2) with full-batch
//! backpropagation.

use std::cell::RefCell;

use gopim_graph::CsrGraph;
use gopim_linalg::activation::{relu, relu_into};
use gopim_linalg::arena::BufferArena;
use gopim_linalg::init::xavier_uniform;
use gopim_linalg::loss::softmax_cross_entropy;
use gopim_linalg::ops::hadamard_relu_grad_in_place;
use gopim_linalg::optimizer::Adam;
use gopim_linalg::Matrix;

use crate::aggregate::Propagation;
use crate::selective::StaleFeatureCache;

/// A multi-layer GCN: layer `l` computes
/// `X^{l+1} = σ(Â · (X^l · W^l))` — Combination (`X·W`) then
/// Aggregation (`Â·C`), with ReLU on every layer but the last.
///
/// Per-epoch temporaries (layer inputs, combination outputs,
/// aggregation outputs, backward deltas and transposes) come from an
/// internal [`BufferArena`]; after [`GcnModel::recycle_caches`] (which
/// [`GcnModel::train_epoch`] calls automatically) the steady-state
/// epoch loop performs no heap allocation for them. Arena buffers are
/// zero-filled on allocation, so the training trajectories stay
/// bit-identical to the allocating implementation.
#[derive(Debug, Clone)]
pub struct GcnModel {
    weights: Vec<Matrix>,
    optimizers: Vec<Adam>,
    scratch: RefCell<BufferArena>,
}

impl GcnModel {
    /// Creates a model with the given layer widths (`dims.len() - 1`
    /// layers).
    ///
    /// # Panics
    ///
    /// Panics if fewer than two widths are given or
    /// `learning_rate <= 0`.
    pub fn new(dims: &[usize], learning_rate: f64, seed: u64) -> Self {
        assert!(dims.len() >= 2, "need at least one layer");
        let weights: Vec<Matrix> = dims
            .windows(2)
            .enumerate()
            .map(|(i, w)| xavier_uniform(w[0], w[1], seed.wrapping_add(i as u64 * 131)))
            .collect();
        let optimizers = weights.iter().map(|_| Adam::new(learning_rate)).collect();
        GcnModel {
            weights,
            optimizers,
            scratch: RefCell::new(BufferArena::new()),
        }
    }

    /// Number of GCN layers.
    pub fn num_layers(&self) -> usize {
        self.weights.len()
    }

    /// Pure forward pass (no staleness), returning the logits.
    ///
    /// # Panics
    ///
    /// Panics if `x.rows() != graph.num_vertices()` or the feature
    /// width mismatches the first layer.
    pub fn forward(&self, graph: &CsrGraph, prop: &dyn Propagation, x: &Matrix) -> Matrix {
        let mut h = x.clone();
        let last = self.num_layers() - 1;
        for (l, w) in self.weights.iter().enumerate() {
            let combined = h.matmul(w);
            let aggregated = prop.propagate(graph, &combined);
            h = if l == last {
                aggregated
            } else {
                relu(&aggregated)
            };
        }
        h
    }

    /// Forward pass recording everything backprop needs: per-layer
    /// inputs, post-aggregation pre-activations, and which rows were
    /// served stale by the ISU cache. The last entry of `pre_acts` is
    /// the output (the final layer has no ReLU).
    pub fn forward_with_caches(
        &self,
        graph: &CsrGraph,
        prop: &dyn Propagation,
        x: &Matrix,
        mut cache: Option<&mut StaleFeatureCache>,
        epoch: usize,
    ) -> ForwardCaches {
        let n = graph.num_vertices();
        assert_eq!(x.rows(), n, "one feature row per vertex");
        let num_layers = self.num_layers();
        let last = num_layers - 1;
        let mut arena = self.scratch.borrow_mut();
        let mut inputs: Vec<Matrix> = Vec::with_capacity(num_layers);
        let mut stale_masks: Vec<Vec<bool>> = Vec::with_capacity(num_layers);
        let mut pre_acts: Vec<Matrix> = Vec::with_capacity(num_layers);
        let mut h = {
            let mut first = arena.alloc(x.rows(), x.cols());
            first.as_mut_slice().copy_from_slice(x.as_slice());
            first
        };
        for l in 0..num_layers {
            inputs.push(h);
            let input = &inputs[l];
            let w = &self.weights[l];
            let mut combined = arena.alloc(n, w.cols());
            input.matmul_into(w, &mut combined);
            // With an ISU cache, `observe` substitutes stale rows into
            // a fresh matrix and `combined` goes back to the arena;
            // without one, `combined` is observed as-is.
            let (observed, stale, spent) = match cache.as_deref_mut() {
                Some(c) => {
                    let (o, s) = c.observe(l, epoch, &combined);
                    (o, s, Some(combined))
                }
                None => (combined, vec![false; n], None),
            };
            let mut aggregated = arena.alloc(n, observed.cols());
            prop.propagate_into(graph, &observed, &mut aggregated);
            arena.recycle(observed);
            if let Some(m) = spent {
                arena.recycle(m);
            }
            stale_masks.push(stale);
            h = if l == last {
                // The output layer is linear; `aggregated` below is
                // the network output and `h` is never read again.
                Matrix::zeros(0, 0)
            } else {
                let mut act = arena.alloc(n, aggregated.cols());
                relu_into(&aggregated, &mut act);
                act
            };
            pre_acts.push(aggregated);
        }
        ForwardCaches {
            inputs,
            pre_acts,
            stale_masks,
        }
    }

    /// Returns the per-epoch temporaries held by `caches` to the
    /// model's internal arena so the next epoch reuses their storage.
    /// Optional — dropping the caches is always correct, it just
    /// re-allocates next epoch. [`GcnModel::train_epoch`] calls this
    /// itself.
    pub fn recycle_caches(&self, caches: ForwardCaches) {
        let mut arena = self.scratch.borrow_mut();
        for m in caches.inputs.into_iter().chain(caches.pre_acts) {
            arena.recycle(m);
        }
    }

    /// Computes per-layer weight gradients for an arbitrary output
    /// gradient (`∂L/∂output`, `N × out_dim`) through the recorded
    /// forward pass, without touching the weights. Stale
    /// (crossbar-resident) rows receive no gradient.
    ///
    /// # Panics
    ///
    /// Panics if `delta`'s shape mismatches the recorded output.
    pub fn gradients(
        &self,
        graph: &CsrGraph,
        prop: &dyn Propagation,
        caches: &ForwardCaches,
        mut delta: Matrix,
    ) -> Vec<Matrix> {
        let num_layers = self.num_layers();
        let last = num_layers - 1;
        assert_eq!(
            delta.shape(),
            caches.pre_acts[last].shape(),
            "output gradient shape mismatch"
        );
        // δ_pre = δ ⊙ σ'; δ_combined = Pᵀ δ_pre (P = Â is symmetric,
        // the mean aggregator is not); stale rows are constants so
        // their combined-gradient is zeroed; ∇W = Xᵀ δ_combined;
        // δ_prev = δ_combined Wᵀ. All `N × d` temporaries come from
        // the arena; only the weight-shaped gradients escape.
        let mut arena = self.scratch.borrow_mut();
        let mut grads = vec![Matrix::zeros(0, 0); num_layers];
        for l in (0..num_layers).rev() {
            if l != last {
                hadamard_relu_grad_in_place(&mut delta, &caches.pre_acts[l]);
            }
            let mut d_combined = arena.alloc(delta.rows(), delta.cols());
            prop.propagate_transpose_into(graph, &delta, &mut d_combined);
            for (v, &is_stale) in caches.stale_masks[l].iter().enumerate() {
                if is_stale {
                    for g in d_combined.row_mut(v) {
                        *g = 0.0;
                    }
                }
            }
            let input = &caches.inputs[l];
            let mut input_t = arena.alloc(input.cols(), input.rows());
            input.transpose_into(&mut input_t);
            grads[l] = input_t.matmul(&d_combined);
            arena.recycle(input_t);
            if l > 0 {
                let w_t = self.weights[l].transpose();
                let mut next = arena.alloc(d_combined.rows(), w_t.cols());
                d_combined.matmul_into(&w_t, &mut next);
                arena.recycle(std::mem::replace(&mut delta, next));
            }
            arena.recycle(d_combined);
        }
        arena.recycle(delta);
        grads
    }

    /// Applies one Adam step per layer with the given gradients (as
    /// produced by [`GcnModel::gradients`], possibly accumulated over
    /// micro-batches first).
    ///
    /// # Panics
    ///
    /// Panics if the gradient count or shapes mismatch the weights.
    pub fn apply_gradients(&mut self, grads: &[Matrix]) {
        assert_eq!(grads.len(), self.num_layers(), "one gradient per layer");
        for (l, grad) in grads.iter().enumerate() {
            self.optimizers[l].step(&mut self.weights[l], grad);
        }
    }

    /// Backpropagates an arbitrary output gradient and applies one Adam
    /// step per layer (compute + apply in one call).
    ///
    /// # Panics
    ///
    /// Panics if `delta`'s shape mismatches the recorded output.
    pub fn backward(
        &mut self,
        graph: &CsrGraph,
        prop: &dyn Propagation,
        caches: &ForwardCaches,
        delta: Matrix,
    ) {
        let grads = self.gradients(graph, prop, caches, delta);
        self.apply_gradients(&grads);
    }

    /// One full-batch node-classification training epoch with optional
    /// ISU staleness.
    ///
    /// `cache` (when provided) substitutes stale combined-feature rows
    /// before each Aggregation, per the update schedule at `epoch`;
    /// gradients are masked off stale rows (they are crossbar-resident
    /// constants).
    ///
    /// Returns the epoch's training loss over `train_mask` rows.
    ///
    /// # Panics
    ///
    /// Panics on any shape mismatch between `x`, `labels`, `train_mask`
    /// and the graph.
    #[allow(clippy::too_many_arguments)] // one argument per training input
    pub fn train_epoch(
        &mut self,
        graph: &CsrGraph,
        prop: &dyn Propagation,
        x: &Matrix,
        labels: &[u32],
        train_mask: &[bool],
        cache: Option<&mut StaleFeatureCache>,
        epoch: usize,
    ) -> f64 {
        let n = graph.num_vertices();
        assert_eq!(labels.len(), n, "one label per vertex");
        assert_eq!(train_mask.len(), n, "one mask bit per vertex");
        let caches = self.forward_with_caches(graph, prop, x, cache, epoch);
        let logits = caches.output();

        // Masked loss: only training vertices contribute.
        let train_rows: Vec<usize> = (0..n).filter(|&v| train_mask[v]).collect();
        assert!(!train_rows.is_empty(), "empty training mask");
        let mut tr_logits = Matrix::zeros(train_rows.len(), logits.cols());
        let mut tr_labels = Vec::with_capacity(train_rows.len());
        for (i, &v) in train_rows.iter().enumerate() {
            tr_logits.row_mut(i).copy_from_slice(logits.row(v));
            tr_labels.push(labels[v]);
        }
        let (loss, tr_grad) = softmax_cross_entropy(&tr_logits, &tr_labels);
        let mut delta = Matrix::zeros(n, logits.cols());
        for (i, &v) in train_rows.iter().enumerate() {
            delta.row_mut(v).copy_from_slice(tr_grad.row(i));
        }
        self.backward(graph, prop, &caches, delta);
        self.recycle_caches(caches);
        loss
    }
}

/// Everything recorded by [`GcnModel::forward_with_caches`] for a
/// subsequent [`GcnModel::backward`].
#[derive(Debug, Clone)]
pub struct ForwardCaches {
    inputs: Vec<Matrix>,
    pre_acts: Vec<Matrix>,
    stale_masks: Vec<Vec<bool>>,
}

impl ForwardCaches {
    /// The network output (final-layer activations; the GCN output
    /// layer is linear).
    pub fn output(&self) -> &Matrix {
        // lint:allow(no-panic-in-lib): ForwardCaches is only built by forward passes over models with >= 1 layer
        self.pre_acts.last().expect("at least one layer")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::NormalizedAdjacency;
    use gopim_graph::generate::planted_partition;
    use gopim_linalg::loss::accuracy;

    fn features_from_labels(labels: &[u32], classes: usize, noise_seed: u64) -> Matrix {
        // One-hot community indicator + noise.
        let n = labels.len();
        let mut x = gopim_linalg::init::uniform(n, classes + 2, 0.3, noise_seed);
        for (v, &l) in labels.iter().enumerate() {
            x[(v, l as usize)] += 1.0;
        }
        x
    }

    #[test]
    fn forward_shapes() {
        let (g, labels) = planted_partition(60, 3, 8.0, 6.0, 1);
        let norm = NormalizedAdjacency::new(&g);
        let x = features_from_labels(&labels, 3, 2);
        let model = GcnModel::new(&[5, 8, 3], 0.01, 3);
        let out = model.forward(&g, &norm, &x);
        assert_eq!(out.shape(), (60, 3));
    }

    #[test]
    fn training_learns_planted_communities() {
        let (g, labels) = planted_partition(200, 3, 10.0, 8.0, 4);
        let norm = NormalizedAdjacency::new(&g);
        let x = features_from_labels(&labels, 3, 5);
        let mut model = GcnModel::new(&[5, 16, 3], 0.02, 6);
        let mask = vec![true; 200];
        let mut first = 0.0;
        let mut last = 0.0;
        for e in 0..40 {
            let loss = model.train_epoch(&g, &norm, &x, &labels, &mask, None, e);
            if e == 0 {
                first = loss;
            }
            last = loss;
        }
        assert!(last < 0.5 * first, "loss {first} → {last}");
        let acc = accuracy(&model.forward(&g, &norm, &x), &labels);
        assert!(acc > 0.8, "accuracy {acc}");
    }

    #[test]
    fn stale_training_still_converges() {
        use gopim_mapping::SelectivePolicy;
        let (g, labels) = planted_partition(200, 3, 10.0, 8.0, 7);
        let norm = NormalizedAdjacency::new(&g);
        let x = features_from_labels(&labels, 3, 8);
        let mut model = GcnModel::new(&[5, 16, 3], 0.02, 9);
        let mask = vec![true; 200];
        let profile = g.to_degree_profile();
        let policy = SelectivePolicy::with_theta(0.5, 10);
        let important = policy.important_vertices(&profile);
        let mut cache = StaleFeatureCache::new(2, important, policy);
        for e in 0..40 {
            model.train_epoch(&g, &norm, &x, &labels, &mask, Some(&mut cache), e);
        }
        let acc = accuracy(&model.forward(&g, &norm, &x), &labels);
        assert!(acc > 0.7, "accuracy with staleness {acc}");
    }

    #[test]
    fn sage_mean_aggregation_trains_too() {
        use crate::aggregate::MeanAggregator;
        let (g, labels) = planted_partition(200, 3, 10.0, 8.0, 12);
        let x = features_from_labels(&labels, 3, 13);
        let mut model = GcnModel::new(&[5, 16, 3], 0.02, 14);
        let mask = vec![true; 200];
        let sage = MeanAggregator::new();
        for e in 0..40 {
            model.train_epoch(&g, &sage, &x, &labels, &mask, None, e);
        }
        let acc = accuracy(&model.forward(&g, &sage, &x), &labels);
        assert!(acc > 0.8, "SAGE accuracy {acc}");
    }

    #[test]
    #[should_panic(expected = "one label per vertex")]
    fn mismatched_labels_rejected() {
        let (g, _) = planted_partition(20, 2, 4.0, 4.0, 1);
        let norm = NormalizedAdjacency::new(&g);
        let x = Matrix::zeros(20, 4);
        let mut model = GcnModel::new(&[4, 2], 0.01, 1);
        let mask = vec![true; 20];
        model.train_epoch(&g, &norm, &x, &[0, 1], &mask, None, 0);
    }
}
