//! Numeric GCN training engine.
//!
//! The performance experiments never need real numerics — but the
//! paper's Table V and Fig. 16 measure *accuracy* under ISU's selective
//! vertex updating, so this crate trains actual GCNs (from scratch, on
//! [`gopim_linalg`] kernels) over [`gopim_graph`] graphs:
//!
//! - [`aggregate`]: the symmetric-normalized sparse aggregation
//!   `Â = D^{-1/2}(A + I)D^{-1/2}` applied directly on CSR.
//! - [`model`]: the multi-layer GCN of the paper's Eq. 1–2 with
//!   full-batch backpropagation.
//! - [`selective`]: the stale-feature semantics of ISU — the
//!   *Aggregation* stage reads the crossbar-resident copy of a combined
//!   feature, which is refreshed every epoch for important vertices and
//!   every 20 epochs for the rest (§VI-A). Gradients do not flow
//!   through stale (constant) rows.
//! - [`train`]: the training/evaluation driver the accuracy experiments
//!   call.
//!
//! # Example
//!
//! ```no_run
//! use gopim_gcn::train::{train_gcn, TrainOptions};
//! use gopim_graph::generate::planted_partition;
//! use gopim_mapping::SelectivePolicy;
//!
//! let (graph, labels) = planted_partition(300, 3, 12.0, 6.0, 1);
//! let mut opts = TrainOptions::quick_test();
//! opts.selective = Some(SelectivePolicy::with_theta(0.5, 20));
//! let report = train_gcn(&graph, &labels, &opts);
//! assert!(report.test_accuracy > 0.5);
//! ```

#![warn(missing_docs)]

pub mod aggregate;
pub mod link;
pub mod metrics;
pub mod minibatch;
pub mod model;
pub mod selective;
pub mod train;

pub use model::GcnModel;
pub use train::{train_gcn, TrainOptions, TrainReport};
