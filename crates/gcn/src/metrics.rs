//! Classification metrics beyond plain accuracy.
//!
//! The OGB tasks behind the paper's datasets are evaluated with
//! class-sensitive metrics (proteins is multi-label ROC-AUC, arxiv and
//! products are accuracy over imbalanced classes). Macro-F1 and the
//! confusion matrix let the accuracy experiments report
//! imbalance-robust numbers alongside Table V's plain accuracy.

use gopim_linalg::Matrix;

/// A `C × C` confusion matrix: `counts[actual][predicted]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    counts: Vec<Vec<usize>>,
}

impl ConfusionMatrix {
    /// Builds the matrix from logits (argmax prediction) and labels.
    ///
    /// # Panics
    ///
    /// Panics if `labels.len() != logits.rows()`, a label is out of
    /// range, or `logits` has no columns.
    pub fn from_logits(logits: &Matrix, labels: &[u32]) -> Self {
        assert_eq!(labels.len(), logits.rows(), "one label per row");
        let classes = logits.cols();
        assert!(classes > 0, "need at least one class");
        let mut counts = vec![vec![0usize; classes]; classes];
        for (i, &label) in labels.iter().enumerate() {
            let actual = label as usize;
            assert!(actual < classes, "label {actual} out of range");
            let row = logits.row(i);
            let predicted = row
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map_or(0, |(j, _)| j);
            counts[actual][predicted] += 1;
        }
        ConfusionMatrix { counts }
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.counts.len()
    }

    /// Raw count of (actual, predicted).
    pub fn count(&self, actual: usize, predicted: usize) -> usize {
        self.counts[actual][predicted]
    }

    /// Per-class precision (`tp / (tp + fp)`), 0 when undefined.
    pub fn precision(&self, class: usize) -> f64 {
        let tp = self.counts[class][class] as f64;
        let predicted: usize = (0..self.num_classes()).map(|a| self.counts[a][class]).sum();
        if predicted == 0 {
            0.0
        } else {
            tp / predicted as f64
        }
    }

    /// Per-class recall (`tp / (tp + fn)`), 0 when undefined.
    pub fn recall(&self, class: usize) -> f64 {
        let tp = self.counts[class][class] as f64;
        let actual: usize = self.counts[class].iter().sum();
        if actual == 0 {
            0.0
        } else {
            tp / actual as f64
        }
    }

    /// Per-class F1, 0 when undefined.
    pub fn f1(&self, class: usize) -> f64 {
        let p = self.precision(class);
        let r = self.recall(class);
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Macro-averaged F1 over classes that appear in the data.
    pub fn macro_f1(&self) -> f64 {
        let present: Vec<usize> = (0..self.num_classes())
            .filter(|&c| self.counts[c].iter().sum::<usize>() > 0)
            .collect();
        if present.is_empty() {
            return 0.0;
        }
        present.iter().map(|&c| self.f1(c)).sum::<f64>() / present.len() as f64
    }

    /// Overall accuracy.
    pub fn accuracy(&self) -> f64 {
        let correct: usize = (0..self.num_classes()).map(|c| self.counts[c][c]).sum();
        let total: usize = self.counts.iter().flatten().sum();
        if total == 0 {
            0.0
        } else {
            correct as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn logits_for(preds: &[u32], classes: usize) -> Matrix {
        let mut m = Matrix::zeros(preds.len(), classes);
        for (i, &p) in preds.iter().enumerate() {
            m[(i, p as usize)] = 1.0;
        }
        m
    }

    #[test]
    fn perfect_prediction_scores_one() {
        let labels = [0u32, 1, 2, 1];
        let cm = ConfusionMatrix::from_logits(&logits_for(&labels, 3), &labels);
        assert_eq!(cm.accuracy(), 1.0);
        assert_eq!(cm.macro_f1(), 1.0);
        assert_eq!(cm.count(1, 1), 2);
    }

    #[test]
    fn macro_f1_punishes_minority_class_failure() {
        // 9 of class 0 all right; 1 of class 1 misclassified.
        let labels: Vec<u32> = (0..10).map(|i| if i == 9 { 1 } else { 0 }).collect();
        let preds: Vec<u32> = vec![0; 10];
        let cm = ConfusionMatrix::from_logits(&logits_for(&preds, 2), &labels);
        assert!((cm.accuracy() - 0.9).abs() < 1e-12);
        // Class 1 F1 is 0 ⇒ macro F1 ≈ (0.947 + 0) / 2.
        assert!(cm.macro_f1() < 0.5, "macro F1 {}", cm.macro_f1());
    }

    #[test]
    fn precision_recall_asymmetry() {
        // actual: [0, 0, 1]; predicted: [0, 1, 1]
        let labels = [0u32, 0, 1];
        let preds = [0u32, 1, 1];
        let cm = ConfusionMatrix::from_logits(&logits_for(&preds, 2), &labels);
        assert!((cm.recall(0) - 0.5).abs() < 1e-12);
        assert!((cm.precision(0) - 1.0).abs() < 1e-12);
        assert!((cm.precision(1) - 0.5).abs() < 1e-12);
        assert!((cm.recall(1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn absent_classes_do_not_distort_macro_f1() {
        let labels = [0u32, 0];
        let preds = [0u32, 0];
        let cm = ConfusionMatrix::from_logits(&logits_for(&preds, 5), &labels);
        assert_eq!(cm.macro_f1(), 1.0);
    }

    #[test]
    #[should_panic(expected = "one label per row")]
    fn mismatched_rows_rejected() {
        let _ = ConfusionMatrix::from_logits(&Matrix::zeros(2, 2), &[0]);
    }
}
