//! Micro-batch numeric training with sampled neighborhoods.
//!
//! The accelerator processes GCN training in micro-batches (§II-A:
//! "each batch is further divided into several micro-batches … their
//! gradients are accumulated for updating the model's weights"). This
//! module is the numeric counterpart: each micro-batch trains on its
//! seed vertices' sampled L-hop neighborhood block, gradients
//! accumulate across the micro-batches of a batch, and the weights
//! update once per batch.

use gopim_graph::partition::MicroBatchPlan;
use gopim_graph::CsrGraph;
use gopim_linalg::loss::{accuracy, softmax_cross_entropy};
use gopim_linalg::ops::accumulate;
use gopim_linalg::Matrix;
use gopim_rng::rngs::SmallRng;
use gopim_rng::seq::SliceRandom;
use gopim_rng::SeedableRng;

use crate::aggregate::NormalizedAdjacency;
use crate::model::GcnModel;
use crate::train::synthetic_features;

/// A sampled computation block: the induced subgraph over a micro-batch
/// and its (fanout-sampled) multi-hop neighborhood.
#[derive(Debug, Clone)]
pub struct Block {
    /// Subgraph over the block's vertices (relabelled `0..len`).
    pub subgraph: CsrGraph,
    /// Original vertex id of each block vertex.
    pub vertices: Vec<u32>,
    /// How many of the leading block vertices are seeds (loss rows).
    pub num_seeds: usize,
}

/// Samples the `hops`-hop neighborhood of `seeds`, keeping at most
/// `fanout` neighbors per vertex per hop.
///
/// # Panics
///
/// Panics if `seeds` is empty, contains duplicates/out-of-range ids, or
/// `fanout == 0`.
pub fn sample_block(
    graph: &CsrGraph,
    seeds: &[u32],
    hops: usize,
    fanout: usize,
    rng: &mut SmallRng,
) -> Block {
    assert!(!seeds.is_empty(), "need at least one seed");
    assert!(fanout > 0, "fanout must be positive");
    let n = graph.num_vertices();
    let mut in_block = vec![false; n];
    let mut vertices: Vec<u32> = Vec::with_capacity(seeds.len() * (fanout + 1));
    for &s in seeds {
        assert!((s as usize) < n, "seed {s} out of range");
        assert!(!in_block[s as usize], "duplicate seed {s}");
        in_block[s as usize] = true;
        vertices.push(s);
    }
    let mut frontier: Vec<u32> = seeds.to_vec();
    for _ in 0..hops {
        let mut next = Vec::new();
        for &v in &frontier {
            let neighbors = graph.neighbors(v as usize);
            let take = neighbors.len().min(fanout);
            // Sample without replacement via partial shuffle indices.
            let mut picks: Vec<u32> = neighbors.to_vec();
            if neighbors.len() > fanout {
                picks.shuffle(rng);
            }
            for &u in picks.iter().take(take) {
                if !in_block[u as usize] {
                    in_block[u as usize] = true;
                    vertices.push(u);
                    next.push(u);
                }
            }
        }
        frontier = next;
        if frontier.is_empty() {
            break;
        }
    }
    Block {
        subgraph: graph.induced_subgraph(&vertices),
        num_seeds: seeds.len(),
        vertices,
    }
}

/// Options for micro-batch training.
#[derive(Debug, Clone)]
pub struct MiniBatchOptions {
    /// Micro-batch (seed-set) size.
    pub micro_batch: usize,
    /// Neighbors sampled per vertex per hop.
    pub fanout: usize,
    /// Hidden width.
    pub hidden: usize,
    /// GCN layers (= sampled hops).
    pub num_layers: usize,
    /// Batches (weight updates) to run; each covers every micro-batch.
    pub batches: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// RNG seed.
    pub seed: u64,
}

impl MiniBatchOptions {
    /// A fast configuration for tests.
    pub fn quick_test() -> Self {
        MiniBatchOptions {
            micro_batch: 32,
            fanout: 8,
            hidden: 16,
            num_layers: 2,
            batches: 25,
            learning_rate: 0.02,
            seed: 1,
        }
    }
}

/// Outcome of a micro-batch training run.
#[derive(Debug, Clone, PartialEq)]
pub struct MiniBatchReport {
    /// Full-graph accuracy after training.
    pub accuracy: f64,
    /// Final batch's mean micro-batch loss.
    pub final_loss: f64,
}

/// Trains with accumulated micro-batch gradients (one weight update per
/// batch, as in §II-A) and evaluates on the full graph.
///
/// # Panics
///
/// Panics if `labels.len() != graph.num_vertices()` or the graph is
/// empty.
pub fn train_minibatch(
    graph: &CsrGraph,
    labels: &[u32],
    options: &MiniBatchOptions,
) -> MiniBatchReport {
    let n = graph.num_vertices();
    assert!(n > 0, "empty graph");
    assert_eq!(labels.len(), n, "one label per vertex");
    let num_classes = (labels.iter().copied().max().unwrap_or(0) + 1) as usize;
    let x = synthetic_features(labels, num_classes, 8, options.seed ^ 0xfea7);

    let mut dims = vec![x.cols()];
    dims.extend(std::iter::repeat_n(options.hidden, options.num_layers - 1));
    dims.push(num_classes);
    let mut model = GcnModel::new(&dims, options.learning_rate, options.seed);
    let mut rng = SmallRng::seed_from_u64(options.seed ^ 0x3b1c);

    let plan = MicroBatchPlan::contiguous(n, options.micro_batch);
    let mut order: Vec<u32> = (0..n as u32).collect();
    let mut final_loss = 0.0;
    for _batch in 0..options.batches {
        order.shuffle(&mut rng);
        let mut grad_acc: Option<Vec<Matrix>> = None;
        let mut batch_loss = 0.0;
        for mb in plan.iter() {
            let seeds: Vec<u32> = order[mb.clone()].to_vec();
            let block = sample_block(graph, &seeds, options.num_layers, options.fanout, &mut rng);
            // Gather block features and labels.
            let mut bx = Matrix::zeros(block.vertices.len(), x.cols());
            for (i, &v) in block.vertices.iter().enumerate() {
                bx.row_mut(i).copy_from_slice(x.row(v as usize));
            }
            let norm = NormalizedAdjacency::new(&block.subgraph);
            let caches = model.forward_with_caches(&block.subgraph, &norm, &bx, None, 0);
            let logits = caches.output();
            // Loss on the seed rows only.
            let mut seed_logits = Matrix::zeros(block.num_seeds, logits.cols());
            let mut seed_labels = Vec::with_capacity(block.num_seeds);
            for i in 0..block.num_seeds {
                seed_logits.row_mut(i).copy_from_slice(logits.row(i));
                seed_labels.push(labels[block.vertices[i] as usize]);
            }
            let (loss, seed_grad) = softmax_cross_entropy(&seed_logits, &seed_labels);
            batch_loss += loss;
            let mut delta = Matrix::zeros(logits.rows(), logits.cols());
            for i in 0..block.num_seeds {
                delta.row_mut(i).copy_from_slice(seed_grad.row(i));
            }
            let grads = model.gradients(&block.subgraph, &norm, &caches, delta);
            match grad_acc.as_mut() {
                None => grad_acc = Some(grads),
                Some(acc) => {
                    for (a, g) in acc.iter_mut().zip(&grads) {
                        accumulate(a, g);
                    }
                }
            }
        }
        // One weight update per batch (gradients accumulated, §II-A).
        if let Some(mut grads) = grad_acc {
            let scale = 1.0 / plan.num_batches() as f64;
            for g in &mut grads {
                for v in g.as_mut_slice() {
                    *v *= scale;
                }
            }
            model.apply_gradients(&grads);
        }
        final_loss = batch_loss / plan.num_batches() as f64;
    }

    // Full-graph evaluation.
    let norm = NormalizedAdjacency::new(graph);
    let logits = model.forward(graph, &norm, &x);
    MiniBatchReport {
        accuracy: accuracy(&logits, labels),
        final_loss,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gopim_graph::generate::degree_corrected_partition;

    fn task() -> (CsrGraph, Vec<u32>) {
        degree_corrected_partition(300, 3, 12.0, 5.0, 0.6, 2)
    }

    #[test]
    fn sampled_block_respects_fanout_and_contains_seeds() {
        let (g, _) = task();
        let mut rng = SmallRng::seed_from_u64(3);
        let seeds: Vec<u32> = (0..16).collect();
        let block = sample_block(&g, &seeds, 2, 4, &mut rng);
        assert_eq!(block.num_seeds, 16);
        assert_eq!(&block.vertices[..16], &seeds[..]);
        // Size bound: seeds × (1 + fanout + fanout²).
        assert!(block.vertices.len() <= 16 * (1 + 4 + 16));
        block.subgraph.validate().unwrap();
    }

    #[test]
    fn minibatch_training_learns_communities() {
        let (g, labels) = task();
        let report = train_minibatch(&g, &labels, &MiniBatchOptions::quick_test());
        assert!(report.accuracy > 0.6, "{report:?}");
    }

    #[test]
    fn minibatch_tracks_fullbatch_within_a_margin() {
        let (g, labels) = task();
        let mini = train_minibatch(&g, &labels, &MiniBatchOptions::quick_test());
        let mut full_opts = crate::train::TrainOptions::quick_test();
        full_opts.epochs = 25;
        let full = crate::train::train_gcn(&g, &labels, &full_opts);
        assert!(
            mini.accuracy > full.test_accuracy - 0.25,
            "mini {} vs full {}",
            mini.accuracy,
            full.test_accuracy
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let (g, labels) = task();
        let a = train_minibatch(&g, &labels, &MiniBatchOptions::quick_test());
        let b = train_minibatch(&g, &labels, &MiniBatchOptions::quick_test());
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "duplicate seed")]
    fn duplicate_seeds_rejected() {
        let (g, _) = task();
        let mut rng = SmallRng::seed_from_u64(1);
        sample_block(&g, &[0, 0], 1, 4, &mut rng);
    }
}
