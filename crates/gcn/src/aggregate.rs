//! Sparse symmetric-normalized aggregation.
//!
//! The GCN propagation rule uses `Â = D^{-1/2}(A + I)D^{-1/2}` (Kipf &
//! Welling). `Â` is symmetric, so the backward pass applies the same
//! operator to the upstream gradient.

use gopim_graph::CsrGraph;
use gopim_linalg::Matrix;
use gopim_obs::metrics::LazyCounter;

static AGG_CALLS: LazyCounter = LazyCounter::new("gcn.aggregate.calls");
static AGG_EDGES: LazyCounter = LazyCounter::new("gcn.aggregate.edges");

/// A neighborhood propagation operator `P` applied as `P · X`.
///
/// Backpropagation needs `Pᵀ`; symmetric operators (like the GCN's
/// `Â`) get it for free via the default method.
pub trait Propagation {
    /// Computes `P · X`.
    fn propagate(&self, graph: &CsrGraph, x: &Matrix) -> Matrix;

    /// Computes `Pᵀ · X` (defaults to [`Propagation::propagate`] for
    /// symmetric operators).
    fn propagate_transpose(&self, graph: &CsrGraph, x: &Matrix) -> Matrix {
        self.propagate(graph, x)
    }

    /// Computes `P · X` into `out`, overwriting its contents — the
    /// allocation-free form used by the arena-backed training path.
    /// The default copies [`Propagation::propagate`]'s result; the
    /// in-repo operators override it to write `out` directly.
    ///
    /// # Panics
    ///
    /// Panics if `out`'s shape differs from the result's.
    fn propagate_into(&self, graph: &CsrGraph, x: &Matrix, out: &mut Matrix) {
        let r = self.propagate(graph, x);
        assert_eq!(out.shape(), r.shape(), "propagate output shape mismatch");
        out.as_mut_slice().copy_from_slice(r.as_slice());
    }

    /// Computes `Pᵀ · X` into `out`, overwriting its contents (see
    /// [`Propagation::propagate_into`]).
    ///
    /// # Panics
    ///
    /// Panics if `out`'s shape differs from the result's.
    fn propagate_transpose_into(&self, graph: &CsrGraph, x: &Matrix, out: &mut Matrix) {
        let r = self.propagate_transpose(graph, x);
        assert_eq!(out.shape(), r.shape(), "propagate output shape mismatch");
        out.as_mut_slice().copy_from_slice(r.as_slice());
    }
}

/// Precomputed normalization coefficients for a graph.
#[derive(Debug, Clone, PartialEq)]
pub struct NormalizedAdjacency {
    /// `1 / sqrt(1 + deg(v))` per vertex.
    inv_sqrt_deg: Vec<f64>,
}

impl NormalizedAdjacency {
    /// Precomputes `D^{-1/2}` with self-loops included.
    pub fn new(graph: &CsrGraph) -> Self {
        let inv_sqrt_deg = (0..graph.num_vertices())
            .map(|v| 1.0 / ((1.0 + graph.degree(v) as f64).sqrt()))
            .collect();
        NormalizedAdjacency { inv_sqrt_deg }
    }

    /// Computes `Â · X` for a feature matrix `X` (one row per vertex).
    ///
    /// # Panics
    ///
    /// Panics if `x.rows() != graph.num_vertices()`.
    pub fn apply(&self, graph: &CsrGraph, x: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(graph.num_vertices(), x.cols());
        self.apply_into(graph, x, &mut out);
        out
    }

    /// [`NormalizedAdjacency::apply`] written into `out`, overwriting
    /// its contents (the allocation-free form for arena buffers).
    ///
    /// # Panics
    ///
    /// Panics if `x.rows() != graph.num_vertices()` or `out`'s shape
    /// differs from `x`'s.
    pub fn apply_into(&self, graph: &CsrGraph, x: &Matrix, out: &mut Matrix) {
        let n = graph.num_vertices();
        assert_eq!(x.rows(), n, "one feature row per vertex");
        assert_eq!(out.shape(), x.shape(), "propagate output shape mismatch");
        let d = x.cols();
        let _span = gopim_obs::span!("gcn.aggregate.normalized", n, d);
        AGG_CALLS.add(1);
        AGG_EDGES.add(graph.num_edges() as u64);
        out.as_mut_slice().fill(0.0);
        if n == 0 || d == 0 {
            return;
        }
        // Row-partitioned CSR gather: output row v reads only `x` and
        // the graph, so contiguous row blocks are independent tasks.
        // Per-row accumulation order (self-loop, then neighbors in
        // CSR order) is fixed, so the bits match the serial loop at
        // every thread count; the whole per-vertex gather goes through
        // `gopim_linalg::simd::gather_row`, whose SIMD and scalar
        // paths are bit-identical.
        let block_rows = n.div_ceil(gopim_par::num_threads() * 4).clamp(1, n);
        let xs = x.as_slice();
        gopim_par::par_chunks_mut(out.as_mut_slice(), block_rows * d, |block, chunk| {
            let v0 = block * block_rows;
            for (dv, out_row) in chunk.chunks_mut(d).enumerate() {
                let v = v0 + dv;
                let sv = self.inv_sqrt_deg[v];
                gopim_linalg::simd::gather_row(
                    out_row,
                    xs,
                    d,
                    v,
                    sv * sv,
                    graph.neighbors(v),
                    gopim_linalg::simd::NeighborCoeffs::Scaled {
                        scale: sv,
                        table: &self.inv_sqrt_deg,
                    },
                );
            }
        });
    }
}

impl Propagation for NormalizedAdjacency {
    fn propagate(&self, graph: &CsrGraph, x: &Matrix) -> Matrix {
        self.apply(graph, x)
    }

    fn propagate_into(&self, graph: &CsrGraph, x: &Matrix, out: &mut Matrix) {
        self.apply_into(graph, x, out);
    }

    // Symmetric: the transpose is the same operator.
    fn propagate_transpose_into(&self, graph: &CsrGraph, x: &Matrix, out: &mut Matrix) {
        self.apply_into(graph, x, out);
    }
}

/// GraphSAGE-style mean aggregation `M = D⁻¹(A + I)`: each vertex's
/// new feature is the mean of its own and its neighbors' features.
/// Unlike `Â`, `M` is not symmetric, so backprop uses the explicit
/// transpose `Mᵀ = (A + I)D⁻¹`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MeanAggregator;

impl MeanAggregator {
    /// A mean aggregator (stateless).
    pub fn new() -> Self {
        MeanAggregator
    }
}

impl Propagation for MeanAggregator {
    fn propagate(&self, graph: &CsrGraph, x: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(graph.num_vertices(), x.cols());
        self.propagate_into(graph, x, &mut out);
        out
    }

    fn propagate_into(&self, graph: &CsrGraph, x: &Matrix, out: &mut Matrix) {
        let n = graph.num_vertices();
        assert_eq!(x.rows(), n, "one feature row per vertex");
        assert_eq!(out.shape(), x.shape(), "propagate output shape mismatch");
        let d = x.cols();
        let _span = gopim_obs::span!("gcn.aggregate.mean", n, d);
        AGG_CALLS.add(1);
        AGG_EDGES.add(graph.num_edges() as u64);
        out.as_mut_slice().fill(0.0);
        if n == 0 || d == 0 {
            return;
        }
        // Same row-partitioned gather as `NormalizedAdjacency::apply`.
        let block_rows = n.div_ceil(gopim_par::num_threads() * 4).clamp(1, n);
        let xs = x.as_slice();
        gopim_par::par_chunks_mut(out.as_mut_slice(), block_rows * d, |block, chunk| {
            let v0 = block * block_rows;
            for (dv, row) in chunk.chunks_mut(d).enumerate() {
                let v = v0 + dv;
                let inv = 1.0 / (1.0 + graph.degree(v) as f64);
                gopim_linalg::simd::gather_row(
                    row,
                    xs,
                    d,
                    v,
                    inv,
                    graph.neighbors(v),
                    gopim_linalg::simd::NeighborCoeffs::Uniform(inv),
                );
            }
        });
    }

    fn propagate_transpose(&self, graph: &CsrGraph, x: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(graph.num_vertices(), x.cols());
        self.propagate_transpose_into(graph, x, &mut out);
        out
    }

    fn propagate_transpose_into(&self, graph: &CsrGraph, x: &Matrix, out: &mut Matrix) {
        // Mᵀ · X: scale each source row by its 1/(1+deg), then scatter
        // along edges (plus the self loop).
        let n = graph.num_vertices();
        assert_eq!(x.rows(), n, "one feature row per vertex");
        assert_eq!(out.shape(), x.shape(), "propagate output shape mismatch");
        out.as_mut_slice().fill(0.0);
        for v in 0..n {
            let inv = 1.0 / (1.0 + graph.degree(v) as f64);
            // Self contribution.
            gopim_linalg::simd::axpy(out.row_mut(v), x.row(v), inv);
        }
        // Scatter along edges: out[u] accumulates contributions from
        // every v with u ∈ N(v), so rows of `out` are written from
        // many source vertices — this pass stays serial.
        for v in 0..n {
            let inv = 1.0 / (1.0 + graph.degree(v) as f64);
            for &u in graph.neighbors(v) {
                // Column v of M has entries inv at rows v and its
                // neighbors ⇒ scatter x[v]·inv_v into out[u].
                gopim_linalg::simd::axpy(out.row_mut(u as usize), x.row(v), inv);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gopim_graph::CsrGraph;

    fn path3() -> CsrGraph {
        CsrGraph::from_edges(3, &[(0, 1), (1, 2)])
    }

    #[test]
    fn isolated_vertices_keep_their_features() {
        let g = CsrGraph::empty(2);
        let norm = NormalizedAdjacency::new(&g);
        let x = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        // deg 0 ⇒ coefficient 1/1 ⇒ identity.
        assert_eq!(norm.apply(&g, &x), x);
    }

    #[test]
    fn aggregation_mixes_neighbors() {
        let g = path3();
        let norm = NormalizedAdjacency::new(&g);
        let x = Matrix::from_rows(&[&[1.0], &[0.0], &[0.0]]);
        let y = norm.apply(&g, &x);
        // Vertex 0: self (1/2) · 1; vertex 1 receives 1/(√3·√2).
        assert!((y[(0, 0)] - 0.5).abs() < 1e-12);
        assert!((y[(1, 0)] - 1.0 / (3.0f64.sqrt() * 2.0f64.sqrt())).abs() < 1e-12);
        assert_eq!(y[(2, 0)], 0.0);
    }

    #[test]
    fn operator_is_symmetric() {
        // x'·(Ây) == y'·(Âx) for the symmetric-normalized operator.
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (0, 3), (0, 2)]);
        let norm = NormalizedAdjacency::new(&g);
        let x = Matrix::from_rows(&[&[1.0], &[-2.0], &[0.5], &[3.0]]);
        let y = Matrix::from_rows(&[&[0.3], &[1.2], &[-0.7], &[0.9]]);
        let ax = norm.apply(&g, &x);
        let ay = norm.apply(&g, &y);
        let dot = |a: &Matrix, b: &Matrix| -> f64 { (0..4).map(|i| a[(i, 0)] * b[(i, 0)]).sum() };
        assert!((dot(&x, &ay) - dot(&y, &ax)).abs() < 1e-12);
    }

    #[test]
    fn spectral_radius_at_most_one() {
        // Â is normalized: repeated application must not blow up.
        let g = CsrGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (0, 2)]);
        let norm = NormalizedAdjacency::new(&g);
        let mut x = Matrix::from_rows(&[&[1.0], &[1.0], &[1.0], &[1.0], &[1.0]]);
        let initial = x.frobenius_norm();
        for _ in 0..20 {
            x = norm.apply(&g, &x);
        }
        assert!(x.frobenius_norm() <= initial + 1e-9);
    }

    #[test]
    fn mean_aggregator_averages_the_closed_neighborhood() {
        let g = path3();
        let m = MeanAggregator::new();
        let x = Matrix::from_rows(&[&[3.0], &[0.0], &[6.0]]);
        let y = m.propagate(&g, &x);
        // Vertex 1 sees mean(3, 0, 6) = 3.
        assert!((y[(1, 0)] - 3.0).abs() < 1e-12);
        // Vertex 0 sees mean(3, 0) = 1.5.
        assert!((y[(0, 0)] - 1.5).abs() < 1e-12);
    }

    #[test]
    fn mean_aggregator_transpose_is_the_adjoint() {
        // x'·(Mᵀy) == (Mx)'·y for all x, y.
        let g = CsrGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)]);
        let m = MeanAggregator::new();
        let x = Matrix::from_rows(&[&[1.0], &[-2.0], &[0.5], &[3.0], &[0.7]]);
        let y = Matrix::from_rows(&[&[0.3], &[1.2], &[-0.7], &[0.9], &[-1.1]]);
        let mx = m.propagate(&g, &x);
        let mty = m.propagate_transpose(&g, &y);
        let dot = |a: &Matrix, b: &Matrix| -> f64 { (0..5).map(|i| a[(i, 0)] * b[(i, 0)]).sum() };
        assert!((dot(&x, &mty) - dot(&mx, &y)).abs() < 1e-12);
    }

    #[test]
    fn propagation_bits_do_not_depend_on_thread_count() {
        let g = CsrGraph::from_edges(60, &(0..59).map(|i| (i, i + 1)).collect::<Vec<_>>());
        let x = Matrix::from_vec(60, 5, (0..300).map(|i| ((i as f64) * 0.41).sin()).collect());
        let norm = NormalizedAdjacency::new(&g);
        let mean = MeanAggregator::new();
        let bits = |m: &Matrix| m.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        let serial =
            gopim_par::Pool::new(1).install(|| (norm.apply(&g, &x), mean.propagate(&g, &x)));
        for threads in [2, 8] {
            let par = gopim_par::Pool::new(threads)
                .install(|| (norm.apply(&g, &x), mean.propagate(&g, &x)));
            assert_eq!(
                bits(&par.0),
                bits(&serial.0),
                "Â·X changed at {threads} threads"
            );
            assert_eq!(
                bits(&par.1),
                bits(&serial.1),
                "M·X changed at {threads} threads"
            );
        }
    }

    #[test]
    #[should_panic(expected = "one feature row per vertex")]
    fn shape_mismatch_rejected() {
        let g = path3();
        let norm = NormalizedAdjacency::new(&g);
        let _ = norm.apply(&g, &Matrix::zeros(2, 1));
    }
}
