//! Property-based tests for the predictor stack (gopim-testkit).

use gopim_linalg::Matrix;
use gopim_predictor::eval::rmse;
use gopim_predictor::models::{
    BayesianRidge, DecisionTree, GradientBoostedTrees, LinearRegression, LinearSvr, Regressor,
};
use gopim_predictor::Normalizer;
use gopim_testkit::prop::{check_with, Config};

/// Deterministic pseudo-random regression problem: a noisy linear
/// function of three features.
fn problem(n: usize, seed: u64) -> (Matrix, Vec<f64>) {
    let val = |i: u64| -> f64 {
        (((i.wrapping_mul(seed * 2 + 1) * 2654435761) >> 8) % 2000) as f64 / 1000.0 - 1.0
    };
    let mut x = Matrix::zeros(n, 3);
    let mut y = Vec::with_capacity(n);
    for i in 0..n {
        let a = val(3 * i as u64);
        let b = val(3 * i as u64 + 1);
        let c = val(3 * i as u64 + 2);
        x.row_mut(i).copy_from_slice(&[a, b, c]);
        y.push(1.5 * a - 0.7 * b + 0.2 * c + 0.05 * val(7 * i as u64 + 5));
    }
    (x, y)
}

fn variance(y: &[f64]) -> f64 {
    let mean = y.iter().sum::<f64>() / y.len() as f64;
    y.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / y.len() as f64
}

#[test]
fn every_regressor_beats_the_mean_on_training_data() {
    check_with(
        "every_regressor_beats_the_mean_on_training_data",
        Config::cases(12),
        |d| {
            let n = d.draw("n", 60usize..200);
            let seed = d.draw("seed", 1u64..200);
            let (x, y) = problem(n, seed);
            let baseline = variance(&y).sqrt();
            let models: Vec<Box<dyn Regressor>> = vec![
                Box::new(LinearRegression::new()),
                Box::new(BayesianRidge::new()),
                Box::new(DecisionTree::default()),
                Box::new(GradientBoostedTrees::default()),
                Box::new(LinearSvr::default()),
            ];
            for mut model in models {
                model.fit(&x, &y);
                let err = rmse(&model.predict(&x), &y);
                assert!(
                    err < baseline,
                    "{} rmse {err} vs std {baseline}",
                    model.name()
                );
            }
        },
    );
}

#[test]
fn normalizer_transform_is_invertible_statistics() {
    check_with(
        "normalizer_transform_is_invertible_statistics",
        Config::cases(12),
        |d| {
            let n = d.draw("n", 10usize..100);
            let seed = d.draw("seed", 1u64..100);
            let (x, _) = problem(n, seed);
            let norm = Normalizer::fit(&x);
            let t = norm.transform(&x);
            // Column means ≈ 0 and stds ≈ 1 after transform.
            for j in 0..t.cols() {
                let mean: f64 = (0..n).map(|i| t[(i, j)]).sum::<f64>() / n as f64;
                assert!(mean.abs() < 1e-9, "col {j} mean {mean}");
                let var: f64 = (0..n).map(|i| (t[(i, j)] - mean).powi(2)).sum::<f64>() / n as f64;
                assert!((var - 1.0).abs() < 1e-6 || var < 1e-12, "col {j} var {var}");
            }
            // Row transform matches matrix transform.
            let row0 = norm.transform_row(x.row(0));
            for j in 0..t.cols() {
                assert!((row0[j] - t[(0, j)]).abs() < 1e-12);
            }
        },
    );
}

#[test]
fn tree_predictions_are_within_the_target_range() {
    check_with(
        "tree_predictions_are_within_the_target_range",
        Config::cases(12),
        |d| {
            let n = d.draw("n", 40usize..150);
            let seed = d.draw("seed", 1u64..100);
            let (x, y) = problem(n, seed);
            let mut tree = DecisionTree::default();
            tree.fit(&x, &y);
            let lo = y.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = y.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            for p in tree.predict(&x) {
                // Leaf values are means of training targets.
                assert!(p >= lo - 1e-9 && p <= hi + 1e-9);
            }
        },
    );
}
