//! Profiling-based time estimation (the alternative GoPIM's ML
//! predictor replaces; §V-A "Inefficiency of Existing Approaches" and
//! Table VII).
//!
//! Profiling runs the workload once and records every stage's time —
//! exact, but the collection cost scales with the workload (the paper
//! measures 1,688.9 s for a single ppa profiling pass, vs milliseconds
//! for ML inference).

use gopim_pipeline::GcnWorkload;

/// Result of a profiling pass.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfilingRun {
    /// Per-stage times (exact, no replicas), ns.
    pub stage_times_ns: Vec<f64>,
    /// Simulated wall-clock cost of collecting the profile: one full
    /// serial epoch of the workload, ns.
    pub collection_cost_ns: f64,
}

/// Profiles a workload by "running" it once (serially) on the
/// simulator and recording per-stage service times.
pub fn profile(workload: &GcnWorkload) -> ProfilingRun {
    let n_mb = workload.num_microbatches();
    let stage_times_ns: Vec<f64> = workload
        .stages()
        .iter()
        .enumerate()
        .map(|(i, st)| {
            let mean_write: f64 =
                (0..n_mb).map(|j| workload.write_ns(i, j)).sum::<f64>() / n_mb as f64;
            st.compute_ns + mean_write
        })
        .collect();
    let collection_cost_ns = stage_times_ns.iter().sum::<f64>() * n_mb as f64;
    ProfilingRun {
        stage_times_ns,
        collection_cost_ns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gopim_graph::datasets::Dataset;
    use gopim_pipeline::WorkloadOptions;

    #[test]
    fn profile_matches_simulator_exactly() {
        let wl = GcnWorkload::build(Dataset::Ddi, &WorkloadOptions::default());
        let run = profile(&wl);
        assert_eq!(run.stage_times_ns.len(), 8);
        assert!(
            (run.stage_times_ns[0] - (wl.stages()[0].compute_ns + wl.stages()[0].write_ns)).abs()
                < 1.0
        );
    }

    #[test]
    fn collection_cost_is_a_full_epoch() {
        let wl = GcnWorkload::build(Dataset::Ddi, &WorkloadOptions::default());
        let run = profile(&wl);
        let per_mb: f64 = run.stage_times_ns.iter().sum();
        assert!((run.collection_cost_ns - per_mb * wl.num_microbatches() as f64).abs() < 1.0);
        // Collection costs far more than a single prediction would.
        assert!(run.collection_cost_ns > 1e6);
    }
}
