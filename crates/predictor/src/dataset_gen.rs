//! Training-data generation for the Time Predictor.
//!
//! The paper records per-stage execution times of six workloads over 30
//! epochs (~2,200 samples). Our equivalent: run the analytic simulator
//! over randomized (graph, model, micro-batch) configurations and
//! record `(Table I features, log stage time)` pairs.

use gopim_graph::datasets::ModelConfig;
use gopim_graph::generate::power_law_profile;
use gopim_linalg::Matrix;
use gopim_pipeline::{GcnWorkload, WorkloadOptions};
use gopim_rng::rngs::SmallRng;
use gopim_rng::{Rng, SeedableRng};

use crate::features::{stage_features, NUM_FEATURES};

/// A feature matrix plus aligned targets. Targets are `ln(service
/// ns)` scaled by [`SampleSet::TARGET_SCALE`], keeping them in ≈[0, 1]
/// so RMSE values are comparable with the paper's (0.0022 scale).
#[derive(Debug, Clone)]
pub struct SampleSet {
    /// Raw (unnormalized) feature rows.
    pub x: Matrix,
    /// Normalized log-time targets, one per row.
    pub y: Vec<f64>,
}

impl SampleSet {
    /// Log-time targets are divided by this constant.
    pub const TARGET_SCALE: f64 = 20.0;

    /// Converts a stage service time in ns to the normalized target.
    pub fn target_of_ns(ns: f64) -> f64 {
        (1.0 + ns).ln() / Self::TARGET_SCALE
    }

    /// Converts a normalized target back to nanoseconds.
    pub fn ns_of_target(t: f64) -> f64 {
        (t * Self::TARGET_SCALE).exp() - 1.0
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.y.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.y.is_empty()
    }
}

impl gopim_cache::CanonicalHash for SampleSet {
    fn canonical_hash(&self, h: &mut gopim_cache::CanonicalHasher) {
        h.write_tag("predictor.sample_set/v1");
        self.x.canonical_hash(h);
        self.y.canonical_hash(h);
    }
}

impl SampleSet {
    /// Concatenates two sample sets.
    ///
    /// # Panics
    ///
    /// Panics if the feature widths differ.
    pub fn concat(&self, other: &SampleSet) -> SampleSet {
        assert_eq!(self.x.cols(), other.x.cols(), "feature width mismatch");
        let mut data = self.x.as_slice().to_vec();
        data.extend_from_slice(other.x.as_slice());
        let mut y = self.y.clone();
        y.extend_from_slice(&other.y);
        SampleSet {
            x: Matrix::from_vec(self.y.len() + other.y.len(), self.x.cols(), data),
            y,
        }
    }
}

/// Records stage samples from the named datasets' own workloads at
/// micro-batch sizes 32/64/128 — the paper's §V-A protocol ("we conduct
/// six workloads … to gather the execution records").
pub fn samples_from_datasets(datasets: &[gopim_graph::datasets::Dataset], seed: u64) -> SampleSet {
    let mut rows: Vec<[f64; NUM_FEATURES]> = Vec::new();
    let mut y = Vec::new();
    for &dataset in datasets {
        for b in [32usize, 64, 128] {
            let options = WorkloadOptions {
                micro_batch: b,
                profile_seed: seed,
                ..WorkloadOptions::default()
            };
            let wl = GcnWorkload::build(dataset, &options);
            let avg = dataset.stats().avg_degree;
            for stage in wl.stages() {
                rows.push(stage_features(&wl, stage, avg));
                y.push(SampleSet::target_of_ns(stage.compute_ns + stage.write_ns));
            }
        }
    }
    let data: Vec<f64> = rows.iter().flat_map(|r| r.iter().copied()).collect();
    SampleSet {
        x: Matrix::from_vec(rows.len(), NUM_FEATURES, data),
        y,
    }
}

/// Generates at least `count` samples from randomized workloads.
///
/// # Panics
///
/// Panics if `count == 0`.
pub fn generate_samples(count: usize, seed: u64) -> SampleSet {
    assert!(count > 0, "need at least one sample");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut rows: Vec<[f64; NUM_FEATURES]> = Vec::with_capacity(count + 16);
    let mut y = Vec::with_capacity(count + 16);
    let mut config_idx = 0u64;
    while y.len() < count {
        config_idx += 1;
        // Random graph: log-uniform N and average degree.
        let n = (2f64.powf(rng.gen_range(9.0..19.2))) as usize;
        let max_deg = (n as f64 / 2.0).min(600.0);
        let avg_deg = 2f64.powf(rng.gen_range(1.0..max_deg.log2()));
        let exponent = rng.gen_range(0.4..1.1);
        let profile = power_law_profile(n, avg_deg, exponent, 0.9, seed ^ config_idx);
        // Random model.
        let dims = [16usize, 32, 64, 100, 128, 256, 512];
        let model = ModelConfig {
            num_layers: rng.gen_range(2..=3),
            learning_rate: 0.01,
            dropout: 0.0,
            input_channels: dims[rng.gen_range(0..dims.len())],
            hidden_channels: dims[rng.gen_range(0..dims.len())],
            output_channels: dims[rng.gen_range(0..dims.len())],
        };
        let options = WorkloadOptions {
            micro_batch: [32, 64, 128][rng.gen_range(0..3)],
            ..WorkloadOptions::default()
        };
        let wl = GcnWorkload::build_custom("sample", &profile, &model, &options);
        let avg = profile.avg_degree();
        for stage in wl.stages() {
            rows.push(stage_features(&wl, stage, avg));
            y.push(SampleSet::target_of_ns(stage.compute_ns + stage.write_ns));
        }
    }
    let data: Vec<f64> = rows.iter().flat_map(|r| r.iter().copied()).collect();
    SampleSet {
        x: Matrix::from_vec(rows.len(), NUM_FEATURES, data),
        y,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_count() {
        let s = generate_samples(50, 3);
        assert!(s.len() >= 50);
        assert_eq!(s.x.rows(), s.len());
        assert_eq!(s.x.cols(), NUM_FEATURES);
    }

    #[test]
    fn targets_are_in_sane_range() {
        let s = generate_samples(60, 4);
        assert!(
            s.y.iter().all(|&t| t > 0.0 && t < 2.0),
            "targets {:?}",
            &s.y[..5]
        );
    }

    #[test]
    fn target_round_trip() {
        for ns in [1.0, 1e3, 1e6, 1e9] {
            let t = SampleSet::target_of_ns(ns);
            let back = SampleSet::ns_of_target(t);
            assert!((back - ns).abs() / ns < 1e-9);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate_samples(30, 9);
        let b = generate_samples(30, 9);
        assert_eq!(a.y, b.y);
    }
}
