//! Evaluation utilities: RMSE (the paper's Fig. 9 metric), train/test
//! splitting and the prediction-accuracy measure of §VII-G.

use gopim_rng::rngs::SmallRng;
use gopim_rng::seq::SliceRandom;
use gopim_rng::SeedableRng;

use gopim_linalg::Matrix;

use crate::dataset_gen::SampleSet;

/// Root mean squared error between predictions and targets.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn rmse(pred: &[f64], target: &[f64]) -> f64 {
    assert_eq!(pred.len(), target.len(), "length mismatch");
    assert!(!pred.is_empty(), "rmse of empty data");
    let mse: f64 = pred
        .iter()
        .zip(target)
        .map(|(&p, &t)| (p - t) * (p - t))
        .sum::<f64>()
        / pred.len() as f64;
    mse.sqrt()
}

/// Mean prediction accuracy `1 − |pred − actual| / actual` (clamped to
/// 0) — the §VII-G "prediction accuracy" (the paper reports 93.4 % on
/// unseen datasets). Operates in time space, not log space.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn prediction_accuracy(pred_ns: &[f64], actual_ns: &[f64]) -> f64 {
    assert_eq!(pred_ns.len(), actual_ns.len(), "length mismatch");
    assert!(!pred_ns.is_empty(), "accuracy of empty data");
    pred_ns
        .iter()
        .zip(actual_ns)
        .map(|(&p, &a)| (1.0 - (p - a).abs() / a.max(1e-9)).max(0.0))
        .sum::<f64>()
        / pred_ns.len() as f64
}

/// Random row split into `(train, test)` with `train_fraction` of the
/// rows in the training set (the paper uses 8:2).
///
/// # Panics
///
/// Panics if `train_fraction ∉ (0, 1)` or the set is empty.
pub fn split(data: &SampleSet, train_fraction: f64, seed: u64) -> (SampleSet, SampleSet) {
    assert!(
        train_fraction > 0.0 && train_fraction < 1.0,
        "train fraction must be in (0, 1)"
    );
    assert!(!data.is_empty(), "cannot split empty sample set");
    let n = data.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(&mut SmallRng::seed_from_u64(seed));
    let n_train = ((n as f64) * train_fraction).round() as usize;
    let n_train = n_train.clamp(1, n - 1);
    let take = |idx: &[usize]| -> SampleSet {
        let mut x = Matrix::zeros(idx.len(), data.x.cols());
        let mut y = Vec::with_capacity(idx.len());
        for (row, &i) in idx.iter().enumerate() {
            x.row_mut(row).copy_from_slice(data.x.row(i));
            y.push(data.y[i]);
        }
        SampleSet { x, y }
    };
    (take(&order[..n_train]), take(&order[n_train..]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmse_of_perfect_prediction_is_zero() {
        assert_eq!(rmse(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
    }

    #[test]
    fn rmse_known_value() {
        // errors 3 and 4 ⇒ rms = sqrt(12.5)
        let v = rmse(&[3.0, 0.0], &[0.0, 4.0]);
        assert!((v - 12.5f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn accuracy_is_one_minus_relative_error() {
        let acc = prediction_accuracy(&[90.0, 110.0], &[100.0, 100.0]);
        assert!((acc - 0.9).abs() < 1e-12);
    }

    #[test]
    fn split_preserves_all_rows() {
        let data = crate::dataset_gen::generate_samples(40, 5);
        let n = data.len();
        let (tr, te) = split(&data, 0.8, 1);
        assert_eq!(tr.len() + te.len(), n);
        assert!(tr.len() > te.len());
    }

    #[test]
    fn split_is_deterministic() {
        let data = crate::dataset_gen::generate_samples(40, 5);
        let (a, _) = split(&data, 0.8, 7);
        let (b, _) = split(&data, 0.8, 7);
        assert_eq!(a.y, b.y);
    }
}
