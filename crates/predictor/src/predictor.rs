//! The MLP-based Time Predictor (paper §V-A, "The Predictor
//! Structure").

use gopim_linalg::{Matrix, Mlp, MlpConfig};
use gopim_pipeline::GcnWorkload;

use crate::dataset_gen::SampleSet;
use crate::features::{stage_features, Normalizer, NUM_FEATURES};

/// A trained execution-time predictor: feature normalizer + MLP with
/// ReLU hidden layers, predicting the normalized log service time of a
/// stage.
///
/// The paper's selected architecture is the 3-layer, 256-hidden-neuron
/// configuration ([`TimePredictor::train_paper`]); the generic
/// [`TimePredictor::train`] supports the depth/width sweeps of
/// Fig. 9(b)/(c).
#[derive(Debug, Clone)]
pub struct TimePredictor {
    mlp: Mlp,
    norm: Normalizer,
}

impl TimePredictor {
    /// Trains a predictor with `depth` total layers (paper counting)
    /// and `hidden` neurons per hidden layer.
    ///
    /// # Panics
    ///
    /// Panics if the sample set is empty or `depth < 2`.
    pub fn train(
        samples: &SampleSet,
        depth: usize,
        hidden: usize,
        epochs: usize,
        seed: u64,
    ) -> Self {
        assert!(!samples.is_empty(), "cannot train on empty samples");
        let norm = Normalizer::fit(&samples.x);
        let x = norm.transform(&samples.x);
        let y = Matrix::from_vec(samples.y.len(), 1, samples.y.clone());
        let config = MlpConfig::uniform(NUM_FEATURES, hidden, 1, depth);
        let mut mlp = Mlp::new(config, seed);
        mlp.fit(&x, &y, epochs, 32, 5e-3);
        TimePredictor { mlp, norm }
    }

    /// Trains the paper's selected configuration (10-256-1).
    pub fn train_paper(samples: &SampleSet, epochs: usize, seed: u64) -> Self {
        Self::train(samples, 3, 256, epochs, seed)
    }

    /// Predicts normalized log-time targets for raw feature rows.
    pub fn predict_normalized(&self, x: &Matrix) -> Vec<f64> {
        let xn = self.norm.transform(x);
        let out = self.mlp.predict(&xn);
        (0..out.rows()).map(|i| out[(i, 0)]).collect()
    }

    /// Predicts the per-stage execution times (ns, no replicas) of a
    /// workload — the input Algorithm 1 consumes.
    pub fn predict_stage_times_ns(&self, workload: &GcnWorkload, avg_degree: f64) -> Vec<f64> {
        let stages = workload.stages();
        let mut x = Matrix::zeros(stages.len(), NUM_FEATURES);
        for (i, st) in stages.iter().enumerate() {
            x.row_mut(i)
                .copy_from_slice(&stage_features(workload, st, avg_degree));
        }
        self.predict_normalized(&x)
            .into_iter()
            .map(SampleSet::ns_of_target)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset_gen::generate_samples;
    use crate::eval::{rmse, split};
    use gopim_graph::datasets::Dataset;
    use gopim_pipeline::WorkloadOptions;

    #[test]
    fn predictor_beats_the_mean_baseline() {
        let data = generate_samples(300, 11);
        let (train, test) = split(&data, 0.8, 1);
        let p = TimePredictor::train(&train, 3, 48, 60, 5);
        let pred = p.predict_normalized(&test.x);
        let model_rmse = rmse(&pred, &test.y);
        let mean = train.y.iter().sum::<f64>() / train.y.len() as f64;
        let baseline = rmse(&vec![mean; test.y.len()], &test.y);
        assert!(
            model_rmse < 0.5 * baseline,
            "model {model_rmse} vs baseline {baseline}"
        );
    }

    #[test]
    fn stage_time_prediction_tracks_simulator() {
        let data = generate_samples(400, 13);
        let p = TimePredictor::train(&data, 3, 64, 80, 6);
        let wl = GcnWorkload::build(Dataset::Ddi, &WorkloadOptions::default());
        let preds = p.predict_stage_times_ns(&wl, Dataset::Ddi.stats().avg_degree);
        assert_eq!(preds.len(), 8);
        // The predictor must rank AG stages far above CO stages.
        assert!(preds[1] > 5.0 * preds[0], "AG {} CO {}", preds[1], preds[0]);
        // And be within ~3× of the simulator on the bottleneck stage.
        let actual = wl.stages()[1].compute_ns + wl.stages()[1].write_ns;
        let ratio = preds[1] / actual;
        assert!(ratio > 0.3 && ratio < 3.0, "ratio {ratio}");
    }

    #[test]
    fn deterministic_given_seed() {
        let data = generate_samples(120, 17);
        let a = TimePredictor::train(&data, 3, 16, 10, 3);
        let b = TimePredictor::train(&data, 3, 16, 10, 3);
        assert_eq!(a.predict_normalized(&data.x), b.predict_normalized(&data.x));
    }
}
