//! Host-runtime estimation for scheduling, not simulation.
//!
//! The paper's predictor (§V-A) estimates *simulated accelerator
//! time* — what the modeled hardware would take. A job server needs a
//! different number: how long the **host** will spend computing a job,
//! so the fair-share queue can order work by predicted cost and keep
//! cheap interactive requests from queuing behind sweep bulldozers.
//!
//! Training an MLP at admission time would cost more than most jobs,
//! so this is a closed-form model of where the simulator's host time
//! actually goes, per `gopim-core`'s runner:
//!
//! - **profile + workload build** — sorting and scanning the degree
//!   profile, laying out per-stage/per-micro-batch write matrices:
//!   linear in vertices, linear in micro-batch count;
//! - **allocation** — the greedy allocator's replica auction: linear
//!   in micro-batches per candidate step;
//! - **schedule simulation** — the event loop: proportional to
//!   `stages × micro-batches × batches`.
//!
//! Absolute calibration only has to be right within a small factor;
//! what admission control needs is the *ordering* (products ≫ ddi,
//! sweep ≫ single run, prediction ≈ free), which the structural terms
//! give for any sane constants. Estimates are pure functions of the
//! job description — deterministic, no clocks, no measurement.

use gopim_graph::datasets::DatasetStats;

/// Closed-form host-cost model. Constants are per-unit nanosecond
/// weights of the runner's dominant loops on a contemporary core.
#[derive(Debug, Clone, Copy)]
pub struct HostCostModel {
    /// Fixed per-job overhead (dispatch, memo lookups), ns.
    pub base_ns: f64,
    /// Per-vertex cost of profile + workload construction, ns.
    pub per_vertex_ns: f64,
    /// Per (stage × micro-batch × batch) cost of the event loop, ns.
    pub per_cell_ns: f64,
    /// Per-micro-batch cost of one allocator auction step, ns.
    pub per_alloc_step_ns: f64,
}

impl Default for HostCostModel {
    fn default() -> Self {
        HostCostModel {
            base_ns: 200_000.0,
            per_vertex_ns: 25.0,
            per_cell_ns: 120.0,
            per_alloc_step_ns: 40.0,
        }
    }
}

/// Pipeline stage count the runner's workloads carry (2 layers × 4
/// stage kinds); the model only needs the order of magnitude.
const STAGES: f64 = 8.0;

/// Allocator auction steps observed for full-chip budgets; replica
/// auctions terminate long before the budget on every shipped dataset.
const ALLOC_STEPS: f64 = 512.0;

impl HostCostModel {
    /// Predicted host cost of simulating one `(dataset, system)` cell,
    /// in nanoseconds.
    pub fn simulate_ns(&self, stats: &DatasetStats, micro_batch: usize, num_batches: usize) -> f64 {
        let micro_batches = (stats.num_vertices as f64 / micro_batch.max(1) as f64).max(1.0);
        self.base_ns
            + self.per_vertex_ns * stats.num_vertices as f64
            + self.per_cell_ns * STAGES * micro_batches * num_batches.max(1) as f64
            + self.per_alloc_step_ns * ALLOC_STEPS * micro_batches.min(64.0)
    }

    /// Predicted host cost of a sweep: the sum of its cells. (The
    /// runner dedups identical cells, but an admission-time estimate
    /// must not undercount a sweep that happens to miss the cache.)
    pub fn sweep_ns<'a>(
        &self,
        cells: impl IntoIterator<Item = &'a DatasetStats>,
        micro_batch: usize,
        num_batches: usize,
    ) -> f64 {
        cells
            .into_iter()
            .map(|s| self.simulate_ns(s, micro_batch, num_batches))
            .sum::<f64>()
            .max(self.base_ns)
    }

    /// Predicted host cost of a replica-allocation-only job: workload
    /// build plus the auction, no schedule simulation.
    pub fn allocate_ns(&self, stats: &DatasetStats, micro_batch: usize) -> f64 {
        let micro_batches = (stats.num_vertices as f64 / micro_batch.max(1) as f64).max(1.0);
        self.base_ns
            + self.per_vertex_ns * stats.num_vertices as f64
            + self.per_alloc_step_ns * ALLOC_STEPS * micro_batches.min(64.0)
    }

    /// Predicted host cost of a profiling/prediction job (feature
    /// extraction over an already-built workload): cheap and nearly
    /// size-independent next to simulation.
    pub fn predict_ns(&self, stats: &DatasetStats) -> f64 {
        self.base_ns + self.per_vertex_ns * 0.1 * stats.num_vertices as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gopim_graph::datasets::Dataset;

    #[test]
    fn bigger_datasets_cost_more() {
        let m = HostCostModel::default();
        let small = m.simulate_ns(&Dataset::Cora.stats(), 64, 1);
        let big = m.simulate_ns(&Dataset::Products.stats(), 64, 1);
        assert!(big > 10.0 * small, "products {big} vs cora {small}");
    }

    #[test]
    fn sweeps_cost_more_than_their_largest_cell() {
        let m = HostCostModel::default();
        let cells: Vec<_> = Dataset::ALL.iter().map(|d| d.stats()).collect();
        let sweep = m.sweep_ns(cells.iter(), 64, 1);
        let max_cell = cells
            .iter()
            .map(|s| m.simulate_ns(s, 64, 1))
            .fold(0.0, f64::max);
        assert!(sweep > max_cell);
    }

    #[test]
    fn prediction_is_cheap_relative_to_simulation() {
        let m = HostCostModel::default();
        let stats = Dataset::Arxiv.stats();
        assert!(m.predict_ns(&stats) < 0.2 * m.simulate_ns(&stats, 64, 1));
    }

    #[test]
    fn estimates_are_finite_positive_and_deterministic() {
        let m = HostCostModel::default();
        for d in Dataset::ALL {
            let a = m.simulate_ns(&d.stats(), 64, 4);
            let b = m.simulate_ns(&d.stats(), 64, 4);
            assert!(a.is_finite() && a > 0.0);
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
