//! The Table I feature vector and normalization.

use gopim_linalg::Matrix;
use gopim_pipeline::{GcnWorkload, StageKind, StageSpec};

/// Number of input features (Table I lists ten).
pub const NUM_FEATURES: usize = 10;

/// Extracts the Table I features for one stage of a workload:
///
/// | # | feature | meaning |
/// |---|---------|---------|
/// | 0 | `R_IFM_CO` | input-matrix rows for Combination-class stages |
/// | 1 | `C_IFM_CO` | input-matrix columns for Combination |
/// | 2 | `R_E_CO`  | mapped weight rows for Combination |
/// | 3 | `C_E_CO`  | mapped weight columns for Combination |
/// | 4 | `R_A_AG`  | adjacency rows for Aggregation-class stages |
/// | 5 | `C_A_AG`  | adjacency columns for Aggregation |
/// | 6 | `R_E_AG`  | mapped feature rows for Aggregation |
/// | 7 | `C_E_AG`  | mapped feature columns for Aggregation |
/// | 8 | `s`       | graph sparsity, log-encoded (see below) |
/// | 9 | `k`       | the stage's layer |
///
/// Size features are `ln(1 + x)`-compressed — stage times span five
/// orders of magnitude and the predictor trains on log-scale targets.
/// The sparsity feature is stored as `ln(1 + avg_degree)` (a monotone
/// transform of `1 − s` given `N`): the raw ratio collapses to ≈1 for
/// every large graph, starving the model of the density signal that
/// drives aggregation time.
pub fn stage_features(
    workload: &GcnWorkload,
    stage: &StageSpec,
    avg_degree: f64,
) -> [f64; NUM_FEATURES] {
    let b = workload.micro_batch() as f64;
    let n = workload.num_vertices() as f64;
    let mut f = [0.0; NUM_FEATURES];
    let log = |x: f64| (1.0 + x).ln();
    match stage.kind {
        StageKind::Combination | StageKind::LossCalc => {
            f[0] = log(b);
            f[1] = log(stage.mapped_rows as f64);
            f[2] = log(stage.mapped_rows as f64);
            f[3] = log(stage.mapped_cols as f64);
        }
        StageKind::Aggregation | StageKind::GradCompute => {
            f[4] = log(b);
            f[5] = log(n);
            f[6] = log(stage.mapped_rows as f64);
            f[7] = log(stage.mapped_cols as f64);
        }
    }
    f[8] = log(avg_degree.max(0.0));
    // The paper's `k` is the layer index. We refine it with a half-step
    // backward-phase offset: without it, AG and GC stages of the same
    // layer have identical feature vectors despite ~2× different times
    // (GC skips the activation pass), which caps the achievable
    // accuracy of *any* regressor on the 4L-stage taxonomy.
    let backward = matches!(stage.kind, StageKind::LossCalc | StageKind::GradCompute);
    f[9] = stage.layer as f64 + if backward { 0.5 } else { 0.0 };
    f
}

/// Per-column z-score normalizer fitted on a training matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Normalizer {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl Normalizer {
    /// Fits means and standard deviations on the columns of `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x` has no rows.
    pub fn fit(x: &Matrix) -> Self {
        assert!(x.rows() > 0, "cannot fit normalizer on empty data");
        let (r, c) = x.shape();
        let mut means = vec![0.0; c];
        let mut stds = vec![0.0; c];
        for j in 0..c {
            let mut sum = 0.0;
            for i in 0..r {
                sum += x[(i, j)];
            }
            means[j] = sum / r as f64;
            let mut var = 0.0;
            for i in 0..r {
                let d = x[(i, j)] - means[j];
                var += d * d;
            }
            stds[j] = (var / r as f64).sqrt().max(1e-12);
        }
        Normalizer { means, stds }
    }

    /// Applies the transform to a matrix of raw features.
    ///
    /// # Panics
    ///
    /// Panics if the column count differs from the fitted data.
    pub fn transform(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.cols(), self.means.len(), "feature width mismatch");
        let mut out = x.clone();
        for i in 0..out.rows() {
            for j in 0..out.cols() {
                out[(i, j)] = (out[(i, j)] - self.means[j]) / self.stds[j];
            }
        }
        out
    }

    /// Transforms one raw feature vector.
    ///
    /// # Panics
    ///
    /// Panics if the length differs from the fitted data.
    pub fn transform_row(&self, row: &[f64]) -> Vec<f64> {
        assert_eq!(row.len(), self.means.len(), "feature width mismatch");
        row.iter()
            .zip(self.means.iter().zip(&self.stds))
            .map(|(&v, (&m, &s))| (v - m) / s)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gopim_graph::datasets::Dataset;
    use gopim_pipeline::WorkloadOptions;

    #[test]
    fn co_and_ag_populate_disjoint_slots() {
        let wl = GcnWorkload::build(Dataset::Ddi, &WorkloadOptions::default());
        let avg = Dataset::Ddi.stats().avg_degree;
        let co = stage_features(&wl, &wl.stages()[0], avg);
        let ag = stage_features(&wl, &wl.stages()[1], avg);
        assert!(co[0] > 0.0 && co[4] == 0.0);
        assert!(ag[4] > 0.0 && ag[0] == 0.0);
        // Sparsity shared.
        assert!((co[8] - ag[8]).abs() < 1e-12);
    }

    #[test]
    fn layer_feature_matches_stage() {
        let wl = GcnWorkload::build(Dataset::Cora, &WorkloadOptions::default());
        let avg = Dataset::Cora.stats().avg_degree;
        let f = stage_features(&wl, &wl.stages()[2], avg); // CO2
        assert_eq!(f[9], 1.0);
    }

    #[test]
    fn normalizer_zero_means_unit_std() {
        let x = Matrix::from_rows(&[&[1.0, 10.0], &[3.0, 30.0], &[5.0, 50.0]]);
        let n = Normalizer::fit(&x);
        let t = n.transform(&x);
        for j in 0..2 {
            let mean: f64 = (0..3).map(|i| t[(i, j)]).sum::<f64>() / 3.0;
            assert!(mean.abs() < 1e-12);
        }
        assert_eq!(n.transform_row(&[3.0, 30.0]), vec![0.0, 0.0]);
    }

    #[test]
    fn normalizer_handles_constant_columns() {
        let x = Matrix::from_rows(&[&[2.0], &[2.0]]);
        let n = Normalizer::fit(&x);
        let t = n.transform(&x);
        assert!(t[(0, 0)].is_finite());
    }
}
