//! The ML-based execution-time predictor (the paper's §V-A).
//!
//! GoPIM avoids profiling every (model, dataset, hardware) combination
//! by predicting each stage's no-replica execution time from ten
//! workload features (Table I) with a pre-trained 3-layer MLP
//! (10-256-1). This crate reproduces the full §V-A pipeline:
//!
//! - [`features`]: the Table I feature vector extracted per stage.
//! - [`dataset_gen`]: training-sample generation by running the
//!   simulator over randomized workloads (the paper gathers 2,200
//!   samples from 30-epoch runs of six workloads).
//! - [`TimePredictor`]: the MLP predictor with feature/target
//!   normalization, plus depth/width sweeps for Fig. 9(b)/(c).
//! - [`models`]: from-scratch implementations of the regressor families
//!   the paper benchmarks in Fig. 9(a) — linear/ridge regression,
//!   Bayesian ridge ("BR"), a CART decision tree ("DT"),
//!   gradient-boosted trees ("XGB") and a linear ε-insensitive SVR.
//! - [`eval`]: RMSE / split / prediction-accuracy utilities.
//! - [`profiling`]: the profiling-based alternative (ground truth at
//!   high collection cost) used by Table VII.
//! - [`runtime`]: closed-form *host*-runtime estimates (not simulated
//!   accelerator time) feeding `gopim-serve`'s fair-share scheduler.
//!
//! # Example
//!
//! ```no_run
//! use gopim_predictor::dataset_gen::generate_samples;
//! use gopim_predictor::{eval, TimePredictor};
//!
//! let data = generate_samples(400, 1);
//! let (train, test) = eval::split(&data, 0.8, 2);
//! let predictor = TimePredictor::train(&train, 3, 64, 60, 9);
//! let rmse = eval::rmse(&predictor.predict_normalized(&test.x), &test.y);
//! assert!(rmse < 0.2);
//! ```

#![warn(missing_docs)]

pub mod dataset_gen;
pub mod eval;
pub mod features;
pub mod models;
pub mod predictor;
pub mod profiling;
pub mod runtime;

pub use dataset_gen::SampleSet;
pub use features::{stage_features, Normalizer, NUM_FEATURES};
pub use predictor::TimePredictor;
pub use runtime::HostCostModel;
