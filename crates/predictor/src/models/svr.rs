//! Linear support-vector regression (the paper's "SVR" bar).

use gopim_linalg::Matrix;

use super::Regressor;

/// Linear ε-insensitive SVR trained by subgradient descent on the
/// primal objective `λ‖w‖² + Σ max(0, |w·x + b − y| − ε)`.
#[derive(Debug, Clone)]
pub struct LinearSvr {
    epsilon: f64,
    lambda: f64,
    epochs: usize,
    learning_rate: f64,
    weights: Vec<f64>,
    bias: f64,
}

impl LinearSvr {
    /// Creates an SVR with the given insensitivity tube and
    /// regularization.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon < 0`, `lambda < 0`, or `epochs == 0`.
    pub fn new(epsilon: f64, lambda: f64, epochs: usize) -> Self {
        assert!(epsilon >= 0.0, "epsilon must be non-negative");
        assert!(lambda >= 0.0, "lambda must be non-negative");
        assert!(epochs > 0, "need at least one epoch");
        LinearSvr {
            epsilon,
            lambda,
            epochs,
            learning_rate: 0.05,
            weights: Vec::new(),
            bias: 0.0,
        }
    }

    fn raw_predict(&self, row: &[f64]) -> f64 {
        row.iter()
            .zip(&self.weights)
            .map(|(&x, &w)| x * w)
            .sum::<f64>()
            + self.bias
    }
}

impl Default for LinearSvr {
    fn default() -> Self {
        LinearSvr::new(0.01, 1e-4, 200)
    }
}

impl Regressor for LinearSvr {
    fn fit(&mut self, x: &Matrix, y: &[f64]) {
        assert_eq!(x.rows(), y.len(), "row/target mismatch");
        assert!(!y.is_empty(), "empty training data");
        let n = x.rows();
        let d = x.cols();
        self.weights = vec![0.0; d];
        self.bias = y.iter().sum::<f64>() / n as f64;
        for epoch in 0..self.epochs {
            let lr = self.learning_rate / (1.0 + epoch as f64 * 0.02);
            for (i, &target) in y.iter().enumerate().take(n) {
                let row = x.row(i);
                let err = self.raw_predict(row) - target;
                // Subgradient of the ε-insensitive loss.
                let g = if err > self.epsilon {
                    1.0
                } else if err < -self.epsilon {
                    -1.0
                } else {
                    0.0
                };
                for (w, &xv) in self.weights.iter_mut().zip(row) {
                    *w -= lr * (g * xv + 2.0 * self.lambda * *w);
                }
                self.bias -= lr * g;
            }
        }
    }

    fn predict(&self, x: &Matrix) -> Vec<f64> {
        assert!(!self.weights.is_empty(), "fit before predict");
        (0..x.rows()).map(|i| self.raw_predict(x.row(i))).collect()
    }

    fn name(&self) -> &'static str {
        "SVR"
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::{mse, toy_problem};
    use super::*;

    #[test]
    fn fits_linear_signal_within_tube() {
        let (x, y) = toy_problem(400, 7);
        let mut svr = LinearSvr::default();
        svr.fit(&x, &y);
        let err = mse(&svr.predict(&x), &y);
        // Linear structure recovered; the a·b interaction stays.
        assert!(err < 0.05, "mse {err}");
    }

    #[test]
    fn wide_tube_yields_flat_model() {
        let (x, y) = toy_problem(200, 8);
        let mut svr = LinearSvr::new(100.0, 1e-4, 50);
        svr.fit(&x, &y);
        // Every point inside the tube ⇒ weights never move.
        assert!(svr.weights.iter().all(|&w| w == 0.0));
    }

    #[test]
    fn deterministic_training() {
        let (x, y) = toy_problem(100, 9);
        let mut a = LinearSvr::default();
        let mut b = LinearSvr::default();
        a.fit(&x, &y);
        b.fit(&x, &y);
        assert_eq!(a.predict(&x), b.predict(&x));
    }
}
