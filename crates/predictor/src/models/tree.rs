//! CART regression tree (the paper's "DT" bar in Fig. 9(a)).

use gopim_linalg::Matrix;

use super::Regressor;

#[derive(Debug, Clone)]
enum Node {
    Leaf(f64),
    Split {
        feature: usize,
        threshold: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

/// A variance-reduction regression tree.
#[derive(Debug, Clone)]
pub struct DecisionTree {
    max_depth: usize,
    min_samples: usize,
    root: Option<Node>,
}

impl DecisionTree {
    /// Creates a tree with the given depth and minimum leaf size.
    ///
    /// # Panics
    ///
    /// Panics if `max_depth == 0` or `min_samples == 0`.
    pub fn new(max_depth: usize, min_samples: usize) -> Self {
        assert!(max_depth > 0, "depth must be positive");
        assert!(min_samples > 0, "min samples must be positive");
        DecisionTree {
            max_depth,
            min_samples,
            root: None,
        }
    }

    fn build(&self, x: &Matrix, y: &[f64], idx: &[usize], depth: usize) -> Node {
        let mean = idx.iter().map(|&i| y[i]).sum::<f64>() / idx.len() as f64;
        if depth >= self.max_depth || idx.len() < 2 * self.min_samples {
            return Node::Leaf(mean);
        }
        // Best split by SSE reduction over all features, scanning the
        // sorted prefix sums.
        let total_sum: f64 = idx.iter().map(|&i| y[i]).sum();
        let total_sq: f64 = idx.iter().map(|&i| y[i] * y[i]).sum();
        let parent_sse = total_sq - total_sum * total_sum / idx.len() as f64;
        let mut best: Option<(f64, usize, f64)> = None; // (sse, feature, threshold)
        for f in 0..x.cols() {
            let mut order: Vec<usize> = idx.to_vec();
            order.sort_by(|&a, &b| x[(a, f)].total_cmp(&x[(b, f)]));
            let mut left_sum = 0.0;
            let mut left_sq = 0.0;
            for (k, &i) in order.iter().enumerate().take(order.len() - 1) {
                left_sum += y[i];
                left_sq += y[i] * y[i];
                let n_left = (k + 1) as f64;
                let n_right = (order.len() - k - 1) as f64;
                if (k + 1) < self.min_samples || (order.len() - k - 1) < self.min_samples {
                    continue;
                }
                // Skip ties — can't split between equal values.
                if x[(i, f)] == x[(order[k + 1], f)] {
                    continue;
                }
                let right_sum = total_sum - left_sum;
                let right_sq = total_sq - left_sq;
                let sse = (left_sq - left_sum * left_sum / n_left)
                    + (right_sq - right_sum * right_sum / n_right);
                if best.is_none_or(|(b, _, _)| sse < b) {
                    let threshold = 0.5 * (x[(i, f)] + x[(order[k + 1], f)]);
                    best = Some((sse, f, threshold));
                }
            }
        }
        match best {
            Some((sse, feature, threshold)) if sse < parent_sse - 1e-12 => {
                let (left, right): (Vec<usize>, Vec<usize>) =
                    idx.iter().partition(|&&i| x[(i, feature)] <= threshold);
                Node::Split {
                    feature,
                    threshold,
                    left: Box::new(self.build(x, y, &left, depth + 1)),
                    right: Box::new(self.build(x, y, &right, depth + 1)),
                }
            }
            _ => Node::Leaf(mean),
        }
    }

    fn eval(node: &Node, row: &[f64]) -> f64 {
        match node {
            Node::Leaf(v) => *v,
            Node::Split {
                feature,
                threshold,
                left,
                right,
            } => {
                if row[*feature] <= *threshold {
                    Self::eval(left, row)
                } else {
                    Self::eval(right, row)
                }
            }
        }
    }
}

impl Default for DecisionTree {
    fn default() -> Self {
        DecisionTree::new(8, 4)
    }
}

impl Regressor for DecisionTree {
    fn fit(&mut self, x: &Matrix, y: &[f64]) {
        assert_eq!(x.rows(), y.len(), "row/target mismatch");
        assert!(!y.is_empty(), "empty training data");
        let idx: Vec<usize> = (0..x.rows()).collect();
        self.root = Some(self.build(x, y, &idx, 0));
    }

    fn predict(&self, x: &Matrix) -> Vec<f64> {
        // lint:allow(no-panic-in-lib): documented API contract — predict() requires a prior fit()
        let root = self.root.as_ref().expect("fit before predict");
        (0..x.rows()).map(|i| Self::eval(root, x.row(i))).collect()
    }

    fn name(&self) -> &'static str {
        "DT"
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::{mse, toy_problem};
    use super::*;

    #[test]
    fn fits_a_step_function_exactly() {
        let x = Matrix::from_rows(&[&[0.0], &[0.2], &[0.8], &[1.0]]);
        let y = [1.0, 1.0, 5.0, 5.0];
        let mut t = DecisionTree::new(3, 1);
        t.fit(&x, &y);
        let p = t.predict(&x);
        assert!(mse(&p, &y) < 1e-18, "{p:?}");
    }

    #[test]
    fn captures_nonlinearity_better_than_mean() {
        let (x, y) = toy_problem(400, 3);
        let mut t = DecisionTree::default();
        t.fit(&x, &y);
        let err = mse(&t.predict(&x), &y);
        let mean = y.iter().sum::<f64>() / y.len() as f64;
        let var = y.iter().map(|&v| (v - mean) * (v - mean)).sum::<f64>() / y.len() as f64;
        assert!(err < 0.2 * var, "err {err} vs var {var}");
    }

    #[test]
    fn depth_one_is_a_stump() {
        let (x, y) = toy_problem(200, 4);
        let mut stump = DecisionTree::new(1, 1);
        stump.fit(&x, &y);
        let preds = stump.predict(&x);
        let mut unique: Vec<f64> = preds.clone();
        unique.sort_by(|a, b| a.partial_cmp(b).unwrap());
        unique.dedup();
        assert!(unique.len() <= 2, "stump produced {} values", unique.len());
    }

    #[test]
    #[should_panic(expected = "fit before predict")]
    fn predict_before_fit_panics() {
        let t = DecisionTree::default();
        let _ = t.predict(&Matrix::zeros(1, 1));
    }
}
