//! Gradient-boosted regression trees (the paper's "XGB" bar).

use gopim_linalg::Matrix;

use super::{DecisionTree, Regressor};

/// Gradient boosting on squared error: each round fits a shallow CART
/// tree to the current residuals and adds it with a shrinkage factor.
#[derive(Debug, Clone)]
pub struct GradientBoostedTrees {
    rounds: usize,
    depth: usize,
    learning_rate: f64,
    base: f64,
    trees: Vec<DecisionTree>,
}

impl GradientBoostedTrees {
    /// Creates a booster.
    ///
    /// # Panics
    ///
    /// Panics if `rounds == 0`, `depth == 0`, or
    /// `learning_rate ∉ (0, 1]`.
    pub fn new(rounds: usize, depth: usize, learning_rate: f64) -> Self {
        assert!(rounds > 0, "need at least one round");
        assert!(depth > 0, "depth must be positive");
        assert!(
            learning_rate > 0.0 && learning_rate <= 1.0,
            "learning rate must be in (0, 1]"
        );
        GradientBoostedTrees {
            rounds,
            depth,
            learning_rate,
            base: 0.0,
            trees: Vec::new(),
        }
    }
}

impl Default for GradientBoostedTrees {
    fn default() -> Self {
        GradientBoostedTrees::new(80, 3, 0.15)
    }
}

impl Regressor for GradientBoostedTrees {
    fn fit(&mut self, x: &Matrix, y: &[f64]) {
        assert_eq!(x.rows(), y.len(), "row/target mismatch");
        assert!(!y.is_empty(), "empty training data");
        self.base = y.iter().sum::<f64>() / y.len() as f64;
        self.trees.clear();
        let mut residual: Vec<f64> = y.iter().map(|&t| t - self.base).collect();
        for _ in 0..self.rounds {
            let mut tree = DecisionTree::new(self.depth, 2);
            tree.fit(x, &residual);
            let pred = tree.predict(x);
            for (r, p) in residual.iter_mut().zip(&pred) {
                *r -= self.learning_rate * p;
            }
            self.trees.push(tree);
        }
    }

    fn predict(&self, x: &Matrix) -> Vec<f64> {
        assert!(!self.trees.is_empty(), "fit before predict");
        let mut out = vec![self.base; x.rows()];
        for tree in &self.trees {
            for (o, p) in out.iter_mut().zip(tree.predict(x)) {
                *o += self.learning_rate * p;
            }
        }
        out
    }

    fn name(&self) -> &'static str {
        "XGB"
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::{mse, toy_problem};
    use super::*;

    #[test]
    fn boosting_beats_a_single_tree() {
        let (x, y) = toy_problem(400, 5);
        let mut single = DecisionTree::new(3, 2);
        single.fit(&x, &y);
        let mut gbt = GradientBoostedTrees::new(60, 3, 0.2);
        gbt.fit(&x, &y);
        let e_single = mse(&single.predict(&x), &y);
        let e_gbt = mse(&gbt.predict(&x), &y);
        assert!(e_gbt < 0.5 * e_single, "gbt {e_gbt} vs tree {e_single}");
    }

    #[test]
    fn more_rounds_monotonically_reduce_training_error() {
        let (x, y) = toy_problem(300, 6);
        let errs: Vec<f64> = [5, 40]
            .iter()
            .map(|&rounds| {
                let mut gbt = GradientBoostedTrees::new(rounds, 3, 0.2);
                gbt.fit(&x, &y);
                mse(&gbt.predict(&x), &y)
            })
            .collect();
        assert!(errs[1] < errs[0]);
    }

    #[test]
    fn constant_target_predicts_constant() {
        let x = Matrix::from_rows(&[&[0.0], &[1.0], &[2.0]]);
        let y = [4.0, 4.0, 4.0];
        let mut gbt = GradientBoostedTrees::new(5, 2, 0.5);
        gbt.fit(&x, &y);
        for p in gbt.predict(&x) {
            assert!((p - 4.0).abs() < 1e-9);
        }
    }
}
