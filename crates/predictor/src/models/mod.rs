//! Baseline regressor families for the Fig. 9(a) comparison.
//!
//! The paper benchmarks its MLP against the top scikit-learn
//! regressors: XGBoost, SVR, Decision Tree, Logistic/Linear Regression
//! and Bernoulli/Bayesian Regression. Each family is implemented here
//! from scratch behind the [`Regressor`] trait.

mod gbt;
mod linear;
mod svr;
mod tree;

pub use gbt::GradientBoostedTrees;
pub use linear::{BayesianRidge, LinearRegression};
pub use svr::LinearSvr;
pub use tree::DecisionTree;

use gopim_linalg::Matrix;

/// A trainable regression model over feature matrices.
pub trait Regressor {
    /// Fits the model on rows of `x` against `y`.
    ///
    /// # Panics
    ///
    /// Implementations panic if `x.rows() != y.len()` or the data is
    /// empty.
    fn fit(&mut self, x: &Matrix, y: &[f64]);

    /// Predicts one value per row of `x`.
    fn predict(&self, x: &Matrix) -> Vec<f64>;

    /// Display name used in reports (matches the paper's Fig. 9 labels).
    fn name(&self) -> &'static str;
}

#[cfg(test)]
pub(crate) mod test_support {
    use gopim_linalg::Matrix;
    use gopim_rng::rngs::SmallRng;
    use gopim_rng::{Rng, SeedableRng};

    /// A noisy nonlinear regression problem all model tests share.
    pub fn toy_problem(n: usize, seed: u64) -> (Matrix, Vec<f64>) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut x = Matrix::zeros(n, 3);
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            let a = rng.gen_range(-1.0..1.0);
            let b = rng.gen_range(-1.0..1.0);
            let c = rng.gen_range(-1.0..1.0);
            x.row_mut(i).copy_from_slice(&[a, b, c]);
            y.push(2.0 * a - b + 0.5 * a * b + 0.01 * c);
        }
        (x, y)
    }

    pub fn mse(pred: &[f64], y: &[f64]) -> f64 {
        pred.iter()
            .zip(y)
            .map(|(&p, &t)| (p - t) * (p - t))
            .sum::<f64>()
            / y.len() as f64
    }
}
