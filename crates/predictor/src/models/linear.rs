//! Linear least-squares models: ordinary/ridge regression and Bayesian
//! ridge (the paper's "LR" and "BR" bars in Fig. 9(a)).

use gopim_linalg::Matrix;

use super::Regressor;

/// Solves the symmetric positive-definite system `A w = b` with
/// Gaussian elimination and partial pivoting. `A` is consumed.
fn solve(mut a: Matrix, mut b: Vec<f64>) -> Vec<f64> {
    let n = b.len();
    assert_eq!(a.shape(), (n, n), "square system expected");
    for col in 0..n {
        // Pivot.
        let pivot = (col..n)
            .max_by(|&i, &j| a[(i, col)].abs().total_cmp(&a[(j, col)].abs()))
            .unwrap_or(col);
        if pivot != col {
            for j in 0..n {
                let tmp = a[(col, j)];
                a[(col, j)] = a[(pivot, j)];
                a[(pivot, j)] = tmp;
            }
            b.swap(col, pivot);
        }
        let diag = a[(col, col)];
        assert!(diag.abs() > 1e-300, "singular system");
        for row in col + 1..n {
            let factor = a[(row, col)] / diag;
            if factor == 0.0 {
                continue;
            }
            for j in col..n {
                let v = a[(col, j)];
                a[(row, j)] -= factor * v;
            }
            b[row] -= factor * b[col];
        }
    }
    // Back substitution.
    let mut w = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for j in row + 1..n {
            acc -= a[(row, j)] * w[j];
        }
        w[row] = acc / a[(row, row)];
    }
    w
}

/// Adds an intercept column of ones.
fn with_bias(x: &Matrix) -> Matrix {
    let (r, c) = x.shape();
    let mut out = Matrix::zeros(r, c + 1);
    for i in 0..r {
        out.row_mut(i)[..c].copy_from_slice(x.row(i));
        out[(i, c)] = 1.0;
    }
    out
}

fn ridge_fit(x: &Matrix, y: &[f64], lambda: f64) -> Vec<f64> {
    assert_eq!(x.rows(), y.len(), "row/target mismatch");
    assert!(x.rows() > 0, "empty training data");
    let xb = with_bias(x);
    let xt = xb.transpose();
    let mut gram = xt.matmul(&xb);
    let d = gram.rows();
    for j in 0..d {
        gram[(j, j)] += lambda;
    }
    let rhs: Vec<f64> = (0..d)
        .map(|j| (0..xb.rows()).map(|i| xb[(i, j)] * y[i]).sum())
        .collect();
    solve(gram, rhs)
}

fn linear_predict(weights: &[f64], x: &Matrix) -> Vec<f64> {
    let c = x.cols();
    assert_eq!(weights.len(), c + 1, "weight width mismatch");
    (0..x.rows())
        .map(|i| {
            x.row(i)
                .iter()
                .zip(weights)
                .map(|(&v, &w)| v * w)
                .sum::<f64>()
                + weights[c]
        })
        .collect()
}

/// Ordinary least squares with a tiny ridge for conditioning.
#[derive(Debug, Clone, Default)]
pub struct LinearRegression {
    weights: Vec<f64>,
}

impl LinearRegression {
    /// An unfitted model.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Regressor for LinearRegression {
    fn fit(&mut self, x: &Matrix, y: &[f64]) {
        self.weights = ridge_fit(x, y, 1e-8);
    }

    fn predict(&self, x: &Matrix) -> Vec<f64> {
        linear_predict(&self.weights, x)
    }

    fn name(&self) -> &'static str {
        "LR"
    }
}

/// Bayesian ridge regression: a Gaussian weight prior whose precision
/// is re-estimated from the data by evidence iteration (a faithful
/// small-scale version of `sklearn.linear_model.BayesianRidge`).
#[derive(Debug, Clone, Default)]
pub struct BayesianRidge {
    weights: Vec<f64>,
}

impl BayesianRidge {
    /// An unfitted model.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Regressor for BayesianRidge {
    fn fit(&mut self, x: &Matrix, y: &[f64]) {
        // Evidence approximation: alternate between fitting ridge
        // weights and re-estimating the regularizer from the weight
        // norm and residuals.
        let mut lambda = 1.0;
        let mut weights = ridge_fit(x, y, lambda);
        for _ in 0..8 {
            let pred = linear_predict(&weights, x);
            let residual: f64 = pred
                .iter()
                .zip(y)
                .map(|(&p, &t)| (p - t) * (p - t))
                .sum::<f64>()
                .max(1e-12);
            let wnorm: f64 = weights.iter().map(|&w| w * w).sum::<f64>().max(1e-12);
            let alpha = weights.len() as f64 / wnorm; // prior precision
            let beta = x.rows() as f64 / residual; // noise precision
            lambda = (alpha / beta).clamp(1e-10, 1e6);
            weights = ridge_fit(x, y, lambda);
        }
        self.weights = weights;
    }

    fn predict(&self, x: &Matrix) -> Vec<f64> {
        linear_predict(&self.weights, x)
    }

    fn name(&self) -> &'static str {
        "BR"
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::{mse, toy_problem};
    use super::*;

    #[test]
    fn solves_exact_linear_system() {
        // y = 3a − 2b + 1, no noise: OLS recovers it exactly.
        let x = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0], &[2.0, -1.0]]);
        let y: Vec<f64> = (0..4)
            .map(|i| 3.0 * x[(i, 0)] - 2.0 * x[(i, 1)] + 1.0)
            .collect();
        let mut lr = LinearRegression::new();
        lr.fit(&x, &y);
        let pred = lr.predict(&x);
        // The tiny conditioning ridge (1e-8) leaves a matching residual.
        assert!(mse(&pred, &y) < 1e-12, "mse {}", mse(&pred, &y));
    }

    #[test]
    fn linear_model_captures_linear_part_only() {
        let (x, y) = toy_problem(300, 1);
        let mut lr = LinearRegression::new();
        lr.fit(&x, &y);
        let err = mse(&lr.predict(&x), &y);
        // The a·b interaction is invisible to a linear model but the
        // dominant 2a − b part is captured.
        assert!(err < 0.05, "mse {err}");
        assert!(err > 1e-6, "should not fit the interaction exactly");
    }

    #[test]
    fn bayesian_ridge_close_to_ols_on_clean_data() {
        let (x, y) = toy_problem(300, 2);
        let mut lr = LinearRegression::new();
        let mut br = BayesianRidge::new();
        lr.fit(&x, &y);
        br.fit(&x, &y);
        let d = mse(&br.predict(&x), &lr.predict(&x));
        assert!(d < 1e-3, "BR vs OLS divergence {d}");
    }

    #[test]
    #[should_panic(expected = "row/target mismatch")]
    fn fit_rejects_mismatched_targets() {
        let mut lr = LinearRegression::new();
        lr.fit(&Matrix::zeros(3, 2), &[1.0]);
    }
}
