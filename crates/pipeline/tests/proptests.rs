//! Property-based tests for workload construction and the DES event
//! queues (gopim-testkit).

use gopim_graph::datasets::ModelConfig;
use gopim_graph::generate::power_law_profile;
use gopim_mapping::SelectivePolicy;
use gopim_pipeline::{GcnWorkload, MappingKind, WorkloadOptions};
use gopim_testkit::prop::{check_with, Config};

fn model(layers: usize) -> ModelConfig {
    ModelConfig {
        num_layers: layers,
        learning_rate: 0.01,
        dropout: 0.0,
        input_channels: 32,
        hidden_channels: 64,
        output_channels: 16,
    }
}

#[test]
fn workload_structure_is_consistent() {
    check_with("workload_structure_is_consistent", Config::cases(24), |d| {
        let n = d.draw("n", 64usize..4000);
        let avg = d.draw("avg", 2.0f64..60.0);
        let layers = d.draw("layers", 2usize..4);
        let b = d.pick("b", &[16usize, 32, 64, 128]);
        let profile = power_law_profile(n, avg, 0.8, 0.9, 3);
        let options = WorkloadOptions {
            micro_batch: b,
            ..WorkloadOptions::default()
        };
        let wl = GcnWorkload::build_custom("prop", &profile, &model(layers), &options);
        assert_eq!(wl.stages().len(), 4 * layers);
        assert_eq!(wl.num_microbatches(), n.div_ceil(b));
        for (i, st) in wl.stages().iter().enumerate() {
            assert_eq!(st.index, i);
            assert!(st.compute_ns > 0.0);
            assert!(st.crossbars_per_replica >= 2);
            for j in 0..wl.num_microbatches() {
                assert!(wl.write_ns(i, j) >= 0.0);
            }
        }
    });
}

#[test]
fn interleaving_never_increases_the_worst_write() {
    check_with(
        "interleaving_never_increases_the_worst_write",
        Config::cases(24),
        |d| {
            let n = d.draw("n", 128usize..4000);
            let avg = d.draw("avg", 2.0f64..80.0);
            let theta = d.draw("theta", 0.2f64..1.0);
            let profile = power_law_profile(n, avg, 0.9, 0.95, 5);
            let policy = SelectivePolicy::with_theta(theta, 20);
            let build = |mapping: MappingKind| {
                let options = WorkloadOptions {
                    mapping,
                    selective: Some(policy),
                    ..WorkloadOptions::default()
                };
                GcnWorkload::build_custom("prop", &profile, &model(2), &options)
            };
            let osu = build(MappingKind::IndexBased);
            let isu = build(MappingKind::Interleaved);
            let worst = |wl: &GcnWorkload| -> f64 {
                (0..wl.num_microbatches())
                    .map(|j| wl.write_ns(1, j))
                    .fold(0.0, f64::max)
            };
            assert!(worst(&isu) <= worst(&osu) + 1e-9);
        },
    );
}

#[test]
fn selective_updating_never_increases_writes() {
    check_with(
        "selective_updating_never_increases_writes",
        Config::cases(24),
        |d| {
            let n = d.draw("n", 128usize..3000);
            let avg = d.draw("avg", 2.0f64..60.0);
            let profile = power_law_profile(n, avg, 0.8, 0.9, 7);
            let build = |selective: Option<SelectivePolicy>| {
                let options = WorkloadOptions {
                    mapping: MappingKind::Interleaved,
                    selective,
                    ..WorkloadOptions::default()
                };
                GcnWorkload::build_custom("prop", &profile, &model(2), &options)
            };
            let full = build(None);
            let selective = build(Some(SelectivePolicy::with_theta(0.5, 20)));
            let total = |wl: &GcnWorkload| -> f64 {
                (0..wl.num_microbatches()).map(|j| wl.write_ns(1, j)).sum()
            };
            assert!(total(&selective) <= total(&full) + 1e-9);
            assert!(selective.stages()[1].rows_written <= full.stages()[1].rows_written + 1e-9);
        },
    );
}

#[test]
fn calendar_queue_drains_exactly_like_the_heap() {
    use gopim_pipeline::queue::{CalendarQueue, EventQueue, HeapQueue};
    // Random streams mixing quantized ReRAM-grid times (frequent
    // exact ties), arbitrary fractional times, and far-future
    // outliers that force the calendar's lap jump; interleaved pops
    // exercise cursor movement mid-stream. Replay a failure with
    // GOPIM_PT_SEED from the printed seed.
    check_with(
        "calendar_queue_drains_exactly_like_the_heap",
        Config::cases(64),
        |d| {
            let ops = d.draw("ops", 10usize..400);
            let width = d.pick("width", &[1.0f64, 29.31, 50.88, 234.48]);
            let mut heap = HeapQueue::new();
            let mut cal = CalendarQueue::with_width(width);
            for id in 0..ops {
                if d.draw(&format!("pop{id}"), 0u32..3) == 0 {
                    assert_eq!(heap.pop(), cal.pop(), "interleaved pop diverged");
                } else {
                    let t = match d.draw(&format!("kind{id}"), 0u32..3) {
                        // Quantized grid: many exact ties.
                        0 => d.draw(&format!("q{id}"), 0u32..50) as f64 * 29.31,
                        // Arbitrary fractional time.
                        1 => d.draw(&format!("f{id}"), 0.0f64..10_000.0),
                        // Far future: several calendar "years" out.
                        _ => d.draw(&format!("far{id}"), 1.0e6f64..1.0e9),
                    };
                    heap.push(t, id);
                    cal.push(t, id);
                }
                assert_eq!(heap.len(), cal.len());
            }
            loop {
                let (h, c) = (heap.pop(), cal.pop());
                assert_eq!(
                    h.map(|(t, id)| (t.to_bits(), id)),
                    c.map(|(t, id)| (t.to_bits(), id)),
                    "drain order diverged"
                );
                if h.is_none() {
                    break;
                }
            }
        },
    );
}

#[test]
fn equal_timestamp_events_drain_fifo() {
    use gopim_pipeline::queue::{CalendarQueue, EventQueue, HeapQueue};
    // Regression pin: a queue swap must never reorder same-time
    // events. Both implementations guarantee strict FIFO among ties,
    // so same-time DES writes stay in submission order.
    fn check(mut q: impl EventQueue<usize>) {
        q.push(50.88, 100);
        for id in 0..8 {
            q.push(29.31, id);
        }
        q.push(0.0, 200);
        assert_eq!(q.pop(), Some((0.0, 200)));
        for id in 0..8 {
            assert_eq!(q.pop(), Some((29.31, id)), "tie broke out of FIFO order");
        }
        assert_eq!(q.pop(), Some((50.88, 100)));
        assert_eq!(q.pop(), None);
    }
    check(HeapQueue::new());
    check(CalendarQueue::new());
}

#[test]
fn faulty_des_conserves_write_time_and_energy() {
    use gopim_faults::{FaultConfig, FaultPlan, FaultSession, MitigationPolicy, SessionConfig};
    use gopim_pipeline::des::{simulate_des, simulate_des_faulty, ReplicaModel};
    check_with(
        "faulty_des_conserves_write_time_and_energy",
        Config::cases(16),
        |d| {
            let n = d.draw("n", 256usize..2000);
            let avg = d.draw("avg", 2.0f64..40.0);
            let profile = power_law_profile(n, avg, 0.8, 0.9, 3);
            let options = WorkloadOptions::default();
            let wl = GcnWorkload::build_custom("prop", &profile, &model(2), &options);
            let s = wl.stages().len();
            let reps = vec![d.pick("r", &[1usize, 2, 4]); s];
            let clean = simulate_des(&wl, &reps, ReplicaModel::DiscreteServers);
            let shape = vec![d.draw("groups", 1usize..24); s];
            let plan = FaultPlan::generate(
                FaultConfig {
                    seed: d.draw("seed", 0u64..1_000_000),
                    stuck_rate: d.draw("stuck_rate", 0.0f64..1.0),
                    transient_rate: d.draw("transient_rate", 0.0f64..0.2),
                    horizon_ns: clean.makespan_ns,
                },
                &shape,
            );
            let mut cfg = SessionConfig::new(d.pick("policy", &MitigationPolicy::ALL));
            cfg.spare_groups = d.draw("spares", 0usize..4);
            let mut session = FaultSession::new(plan, cfg, &shape);
            let faulty =
                simulate_des_faulty(&wl, &reps, ReplicaModel::DiscreteServers, &mut session);
            // Mitigation only adds simulated time: the faulty run can
            // never beat the fault-free one, so total write time — and
            // with it write energy — is conserved or exceeded.
            assert!(
                faulty.makespan_ns >= clean.makespan_ns,
                "faulty {} < clean {}",
                faulty.makespan_ns,
                clean.makespan_ns
            );
            let stats = session.stats();
            assert!(stats.extra_write_ns >= 0.0);
            assert!(stats.extra_rows >= 0.0);
            // The makespan stretch is bounded by the extra write time
            // actually injected (each extra write-ns delays at most
            // the full downstream chain once per stage visit).
            if stats.extra_write_ns == 0.0 && stats.dropped_rows == 0 && stats.injected == 0 {
                assert_eq!(faulty.makespan_ns.to_bits(), clean.makespan_ns.to_bits());
            }
        },
    );
}
