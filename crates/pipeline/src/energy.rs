//! Energy accounting for a simulated pipeline run.
//!
//! Combines the per-operation energies of [`gopim_reram::energy`] with
//! the op counts of a workload and the makespan of a schedule:
//! dynamic MVM energy, ReRAM programming energy, leakage of occupied
//! crossbars, and the constant chip overhead. Replication does not
//! change the dynamic work (the same inputs are processed, spread over
//! replicas) but increases occupied-crossbar leakage — while shrinking
//! the makespan, which is the effect behind the paper's Fig. 13(b).

use gopim_reram::energy::EnergyModel;
use gopim_reram::spec::AcceleratorSpec;

use crate::schedule::PipelineResult;
use crate::workload::GcnWorkload;

/// Energy breakdown of one run, nanojoules.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyBreakdown {
    /// Dynamic MVM (read-path) energy.
    pub compute_nj: f64,
    /// ReRAM programming energy.
    pub write_nj: f64,
    /// Leakage of occupied (mapped) crossbars over the makespan.
    pub leakage_nj: f64,
    /// Chip-constant overhead (controller, weight computer, activation
    /// module) over the makespan.
    pub overhead_nj: f64,
}

impl EnergyBreakdown {
    /// Total energy, nJ.
    pub fn total_nj(&self) -> f64 {
        self.compute_nj + self.write_nj + self.leakage_nj + self.overhead_nj
    }
}

/// Computes the energy of a simulated run.
///
/// # Panics
///
/// Panics if `replicas.len() != workload.stages().len()`.
pub fn energy_of_run(
    spec: &AcceleratorSpec,
    workload: &GcnWorkload,
    replicas: &[usize],
    result: &PipelineResult,
    num_batches: usize,
) -> EnergyBreakdown {
    energy_with_extra_writes(
        spec,
        workload,
        replicas,
        result.makespan_ns,
        0.0,
        num_batches,
    )
}

/// Computes the energy of a run with `extra_rows` additional crossbar
/// row writes on top of the workload's own (fault-mitigation work:
/// remap reprogramming and retried writes, from
/// [`SessionStats::extra_rows`](gopim_faults::SessionStats)). With
/// `extra_rows = 0.0` this is exactly [`energy_of_run`] — the extra
/// term is branch-guarded so the fault-free path stays bit-identical.
///
/// # Panics
///
/// Panics if `replicas.len() != workload.stages().len()`.
pub fn energy_with_extra_writes(
    spec: &AcceleratorSpec,
    workload: &GcnWorkload,
    replicas: &[usize],
    makespan_ns: f64,
    extra_rows: f64,
    num_batches: usize,
) -> EnergyBreakdown {
    assert_eq!(
        replicas.len(),
        workload.stages().len(),
        "one replica count per stage"
    );
    let model = EnergyModel::new(spec);
    let n_mb = workload.num_microbatches() as f64 * num_batches as f64;
    let mut compute_nj = 0.0;
    let mut write_nj = 0.0;
    let mut occupied: u64 = 0;
    for (i, st) in workload.stages().iter().enumerate() {
        compute_nj += model.mvm_energy_nj(st.mvm_crossbar_issues, 1) * n_mb;
        // Updates reach every replica through shared broadcast wordline
        // drivers; the programming event is charged once per row, and
        // the per-replica driver cost is folded into occupied-crossbar
        // leakage.
        write_nj += model.write_energy_nj(1) * st.rows_written * n_mb;
        occupied += (st.crossbars_per_replica * replicas[i]) as u64;
    }
    if extra_rows > 0.0 {
        write_nj += model.write_energy_nj(1) * extra_rows;
    }
    let leakage_nj = model.leakage_energy_nj(occupied, makespan_ns);
    let overhead_nj = model.overhead_energy_nj(makespan_ns);
    EnergyBreakdown {
        compute_nj,
        write_nj,
        leakage_nj,
        overhead_nj,
    }
}

impl gopim_cache::CacheValue for EnergyBreakdown {
    fn encode(&self, e: &mut gopim_cache::Encoder) {
        e.put_f64(self.compute_nj);
        e.put_f64(self.write_nj);
        e.put_f64(self.leakage_nj);
        e.put_f64(self.overhead_nj);
    }
    fn decode(d: &mut gopim_cache::Decoder<'_>) -> Option<Self> {
        Some(EnergyBreakdown {
            compute_nj: d.take_f64()?,
            write_nj: d.take_f64()?,
            leakage_nj: d.take_f64()?,
            overhead_nj: d.take_f64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{simulate, PipelineOptions};
    use crate::workload::{GcnWorkload, WorkloadOptions};
    use gopim_graph::datasets::Dataset;

    fn setup() -> (AcceleratorSpec, GcnWorkload) {
        (
            AcceleratorSpec::paper(),
            GcnWorkload::build(Dataset::Ddi, &WorkloadOptions::default()),
        )
    }

    #[test]
    fn shorter_runs_spend_less_overhead_energy() {
        let (spec, wl) = setup();
        let s = wl.stages().len();
        let serial = simulate(&wl, &vec![1; s], &PipelineOptions::serial());
        let piped = simulate(&wl, &vec![1; s], &PipelineOptions::default());
        let e_serial = energy_of_run(&spec, &wl, &vec![1; s], &serial, 1);
        let e_piped = energy_of_run(&spec, &wl, &vec![1; s], &piped, 1);
        assert!(e_piped.overhead_nj < e_serial.overhead_nj);
        assert!(e_piped.total_nj() < e_serial.total_nj());
        // Dynamic work identical.
        assert!((e_piped.compute_nj - e_serial.compute_nj).abs() < 1e-6);
    }

    #[test]
    fn replication_raises_leakage_but_can_cut_total() {
        let (spec, wl) = setup();
        let s = wl.stages().len();
        let ones = vec![1; s];
        let base_run = simulate(&wl, &ones, &PipelineOptions::default());
        let mut reps = vec![1; s];
        for (i, st) in wl.stages().iter().enumerate() {
            if st.kind.maps_features() {
                reps[i] = 16;
            }
        }
        let boosted_run = simulate(&wl, &reps, &PipelineOptions::default());
        let base = energy_of_run(&spec, &wl, &ones, &base_run, 1);
        let boosted = energy_of_run(&spec, &wl, &reps, &boosted_run, 1);
        // Leakage *rate* rises with occupancy, but the makespan shrinks
        // by more, so total energy falls (paper Fig. 13(b) argument).
        assert!(boosted.total_nj() < base.total_nj());
    }

    #[test]
    fn extra_rows_add_exactly_their_write_energy() {
        let (spec, wl) = setup();
        let s = wl.stages().len();
        let run = simulate(&wl, &vec![1; s], &PipelineOptions::default());
        let base = energy_of_run(&spec, &wl, &vec![1; s], &run, 1);
        let zero = energy_with_extra_writes(&spec, &wl, &vec![1; s], run.makespan_ns, 0.0, 1);
        // Zero extra rows: bit-identical to the fault-free accounting.
        assert_eq!(base.write_nj.to_bits(), zero.write_nj.to_bits());
        assert_eq!(base.total_nj().to_bits(), zero.total_nj().to_bits());
        let faulted = energy_with_extra_writes(&spec, &wl, &vec![1; s], run.makespan_ns, 512.0, 1);
        let model = EnergyModel::new(&spec);
        let expect = base.write_nj + model.write_energy_nj(1) * 512.0;
        assert!((faulted.write_nj - expect).abs() < 1e-9);
        assert_eq!(faulted.compute_nj.to_bits(), base.compute_nj.to_bits());
        assert_eq!(faulted.leakage_nj.to_bits(), base.leakage_nj.to_bits());
    }

    #[test]
    fn write_energy_is_replica_independent_but_leakage_is_not() {
        let (spec, wl) = setup();
        let s = wl.stages().len();
        let run = simulate(&wl, &vec![1; s], &PipelineOptions::default());
        let e1 = energy_of_run(&spec, &wl, &vec![1; s], &run, 1);
        let e2 = energy_of_run(&spec, &wl, &vec![2; s], &run, 1);
        assert!((e2.write_nj - e1.write_nj).abs() < 1e-9);
        assert!((e2.leakage_nj - 2.0 * e1.leakage_nj).abs() / e1.leakage_nj < 1e-9);
    }
}
