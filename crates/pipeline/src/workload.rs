//! Builds the 4L-stage pipeline workload for a dataset/model pair.

use gopim_graph::datasets::{Dataset, ModelConfig};
use gopim_graph::DegreeProfile;
use gopim_mapping::{index_based, interleaved, SelectivePolicy, VertexMapping};
use gopim_reram::tiling;

use crate::latency::LatencyParams;
use crate::stage::{stage_order, StageKind, StageSpec};

/// Which vertex-to-crossbar mapping strategy the workload uses for its
/// feature-mapped stages (AG/GC).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MappingKind {
    /// Vertex-index order (ReGraphX / SlimGNN baseline; the paper's
    /// "OSU" when combined with selective updating).
    IndexBased,
    /// GoPIM's degree-interleaved mapping (§VI-B).
    Interleaved,
}

/// How the selective-updating schedule is folded into write times.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum UpdateAccounting {
    /// Steady-state average: an unimportant vertex contributes
    /// `1 / stale_period` of a row per epoch. Right for makespan and
    /// energy totals over many epochs.
    #[default]
    Amortized,
    /// A non-refresh epoch: only important vertices write.
    SteadyEpoch,
    /// A refresh epoch (`epoch % stale_period == 0`): every vertex
    /// writes.
    RefreshEpoch,
}

/// Options controlling workload construction.
#[derive(Debug, Clone)]
pub struct WorkloadOptions {
    /// Micro-batch size `B` (the paper defaults to 64).
    pub micro_batch: usize,
    /// Vertex mapping strategy.
    pub mapping: MappingKind,
    /// Selective-updating policy; `None` updates every vertex every
    /// epoch.
    pub selective: Option<SelectivePolicy>,
    /// How the update schedule enters the write times.
    pub accounting: UpdateAccounting,
    /// Latency model parameters.
    pub params: LatencyParams,
    /// Extra feature-row loads per processed edge, modeling ReFlip's
    /// column-major repeated source-vertex loading (0 for everything
    /// else).
    pub repeated_load_rows_per_edge: f64,
    /// Seed for the synthetic degree profile.
    pub profile_seed: u64,
}

impl Default for WorkloadOptions {
    fn default() -> Self {
        WorkloadOptions {
            micro_batch: 64,
            mapping: MappingKind::IndexBased,
            selective: None,
            accounting: UpdateAccounting::Amortized,
            params: LatencyParams::paper(),
            repeated_load_rows_per_edge: 0.0,
            profile_seed: 7,
        }
    }
}

/// A fully-specified pipeline workload: stage specs plus the per-
/// micro-batch write times that pace each feature-mapped stage.
#[derive(Debug, Clone)]
pub struct GcnWorkload {
    name: String,
    stages: Vec<StageSpec>,
    /// `write_ns[stage][micro_batch]`: ReRAM write time of that
    /// micro-batch at that stage (non-uniform under index-based
    /// mapping, where degree locality concentrates updates).
    write_ns: Vec<Vec<f64>>,
    num_microbatches: usize,
    micro_batch: usize,
    num_vertices: usize,
    overhead_ns: f64,
}

impl GcnWorkload {
    /// Builds the workload for one of the paper's datasets using its
    /// Table III statistics and Table IV model.
    pub fn build(dataset: Dataset, options: &WorkloadOptions) -> Self {
        let profile = dataset.profile(options.profile_seed);
        Self::build_custom(dataset.name(), &profile, &dataset.model(), options)
    }

    /// Builds a workload from an explicit degree profile and model
    /// (used by the scalability sweeps, e.g. Fig. 17(a)'s feature-
    /// dimension scan).
    ///
    /// # Panics
    ///
    /// Panics if the profile is empty or `micro_batch == 0`.
    pub fn build_custom(
        name: &str,
        profile: &DegreeProfile,
        model: &ModelConfig,
        options: &WorkloadOptions,
    ) -> Self {
        let n = profile.num_vertices();
        assert!(n > 0, "workload needs at least one vertex");
        assert!(options.micro_batch > 0, "micro-batch must be positive");
        let b = options.micro_batch;
        let n_mb = n.div_ceil(b);
        let spec = &options.params.spec;
        let capacity = spec.crossbar_rows;

        // Mapping + selection drive the write profile of AG/GC stages.
        let mapping = match options.mapping {
            MappingKind::IndexBased => index_based(n, capacity),
            MappingKind::Interleaved => interleaved(profile, capacity),
        };
        let policy = options
            .selective
            .unwrap_or_else(SelectivePolicy::update_all);
        let important = policy.important_vertices(profile);
        // Per-epoch write weight of each vertex: important vertices
        // refresh every epoch; the rest depend on the accounting mode.
        let stale = policy.stale_period() as f64;
        let unimportant_weight = match options.accounting {
            UpdateAccounting::Amortized => 1.0 / stale,
            UpdateAccounting::SteadyEpoch => 0.0,
            UpdateAccounting::RefreshEpoch => 1.0,
        };
        let weight_of = |v: usize| -> f64 {
            if important[v] {
                1.0
            } else {
                unimportant_weight
            }
        };

        // group_of[v]: which crossbar group holds vertex v.
        let mut group_of = vec![0u32; n];
        for (g, members) in mapping.groups().iter().enumerate() {
            for &v in members {
                group_of[v as usize] = g as u32;
            }
        }

        // Per-micro-batch pacing write rows: each micro-batch writes the
        // freshly-produced features of its own (selected) vertices; rows
        // on the same crossbar serialize, groups run in parallel, so the
        // pacing quantity is the *maximum* rows landing on one group.
        let mut pacing_rows = vec![0.0f64; n_mb];
        {
            let mut per_group: std::collections::BTreeMap<u32, f64> =
                std::collections::BTreeMap::new();
            for (j, rows) in pacing_rows.iter_mut().enumerate() {
                per_group.clear();
                let start = j * b;
                let end = ((j + 1) * b).min(n);
                for (v, &group) in group_of.iter().enumerate().take(end).skip(start) {
                    *per_group.entry(group).or_insert(0.0) += weight_of(v);
                }
                *rows = per_group.values().cloned().fold(0.0, f64::max);
            }
        }
        let amortized_rows_total: f64 = (0..n).map(weight_of).sum();

        let avg_degree = profile.avg_degree();
        let total_degree = profile.total_degree() as f64; // 2E
        let edges_per_mb = total_degree / n_mb as f64;
        let groups = tiling::feature_groups(spec, n);
        let params = &options.params;

        let mut stages = Vec::new();
        let mut write_profiles: Vec<Vec<f64>> = Vec::new();
        for (index, (kind, layer)) in stage_order(model.num_layers).into_iter().enumerate() {
            let (in_dim, out_dim) = model.layer_dims(layer);
            let spec_stage = match kind {
                StageKind::Combination | StageKind::LossCalc => {
                    // Weights mapped (LC uses the transposed weights;
                    // same footprint).
                    let xbars = tiling::crossbars_for_matrix(spec, in_dim, out_dim);
                    let compute = params.combination_compute_ns(b);
                    // Weight rewrite once per batch, serial within a
                    // crossbar (≤64 rows), amortized per micro-batch.
                    let weight_write_epoch = in_dim.min(capacity) as f64 * params.row_write_ns();
                    let write = weight_write_epoch / n_mb as f64;
                    let col_tiles = out_dim.div_ceil(spec.crossbar_cols);
                    let rows_written =
                        in_dim as f64 * col_tiles as f64 * spec.differential_pairs as f64
                            / n_mb as f64;
                    write_profiles.push(vec![write; n_mb]);
                    StageSpec {
                        kind,
                        layer,
                        index,
                        mapped_rows: in_dim,
                        mapped_cols: out_dim,
                        crossbars_per_replica: xbars,
                        compute_ns: compute,
                        write_ns: write,
                        mvm_crossbar_issues: (b * xbars) as u64,
                        rows_written,
                    }
                }
                StageKind::Aggregation | StageKind::GradCompute => {
                    // Feature matrix (N × out_dim) mapped.
                    let xbars = tiling::crossbars_for_matrix(spec, n, out_dim);
                    let col_tiles = out_dim.div_ceil(spec.crossbar_cols);
                    let width = (col_tiles * spec.differential_pairs) as f64;
                    let base_compute =
                        params.aggregation_compute_ns(b, avg_degree, groups, edges_per_mb);
                    let compute = if kind == StageKind::Aggregation {
                        base_compute
                    } else {
                        params.grad_compute_ns(
                            b,
                            avg_degree,
                            groups,
                            edges_per_mb,
                            (in_dim * out_dim) as u64,
                        )
                    };
                    // Per-micro-batch writes: only AG stages program the
                    // refreshed features (the paper folds GC's rewrites
                    // into the CO/AG loading steps, §IV-B).
                    let (per_mb_write, rows_written) = if kind == StageKind::Aggregation {
                        let extra = options.repeated_load_rows_per_edge * edges_per_mb;
                        let extra_pacing = extra / groups as f64;
                        let writes: Vec<f64> = pacing_rows
                            .iter()
                            .map(|&r| (r + extra_pacing) * params.row_write_ns())
                            .collect();
                        let rows = amortized_rows_total * width / n_mb as f64 + extra * width;
                        (writes, rows)
                    } else {
                        (vec![0.0; n_mb], 0.0)
                    };
                    let mean_write = per_mb_write.iter().sum::<f64>() / n_mb as f64;
                    write_profiles.push(per_mb_write);
                    StageSpec {
                        kind,
                        layer,
                        index,
                        mapped_rows: n,
                        mapped_cols: out_dim,
                        crossbars_per_replica: xbars,
                        compute_ns: compute,
                        write_ns: mean_write,
                        mvm_crossbar_issues: (b as f64
                            * params.expected_active_groups(avg_degree, groups)
                            * width) as u64,
                        rows_written,
                    }
                }
            };
            stages.push(spec_stage);
        }

        GcnWorkload {
            name: name.to_string(),
            stages,
            write_ns: write_profiles,
            num_microbatches: n_mb,
            micro_batch: b,
            num_vertices: n,
            overhead_ns: params.microbatch_overhead_ns,
        }
    }

    /// Per-micro-batch, per-stage scheduling overhead (dead time: the
    /// crossbars are idle during it), ns.
    pub fn overhead_ns(&self) -> f64 {
        self.overhead_ns
    }

    /// Workload name (dataset name).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The pipeline stages in execution order.
    pub fn stages(&self) -> &[StageSpec] {
        &self.stages
    }

    /// Write time of micro-batch `j` at stage `i`, ns.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of range.
    pub fn write_ns(&self, stage: usize, microbatch: usize) -> f64 {
        self.write_ns[stage][microbatch]
    }

    /// Number of micro-batches per batch (`⌈N / B⌉`).
    pub fn num_microbatches(&self) -> usize {
        self.num_microbatches
    }

    /// Micro-batch size `B`.
    pub fn micro_batch(&self) -> usize {
        self.micro_batch
    }

    /// Vertices in the graph.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Crossbars occupied by one replica of every stage (the `Serial`
    /// footprint in the paper's Table VI).
    pub fn base_crossbars(&self) -> usize {
        self.stages.iter().map(|s| s.crossbars_per_replica).sum()
    }
}

/// Convenience: a [`VertexMapping`] for this dataset under the given
/// kind (used by the Fig. 6 analysis binaries).
pub fn mapping_for(profile: &DegreeProfile, kind: MappingKind, capacity: usize) -> VertexMapping {
    match kind {
        MappingKind::IndexBased => index_based(profile.num_vertices(), capacity),
        MappingKind::Interleaved => interleaved(profile, capacity),
    }
}

impl gopim_cache::CanonicalHash for MappingKind {
    fn canonical_hash(&self, h: &mut gopim_cache::CanonicalHasher) {
        h.write_u8(match self {
            MappingKind::IndexBased => 0,
            MappingKind::Interleaved => 1,
        });
    }
}

impl gopim_cache::CanonicalHash for UpdateAccounting {
    fn canonical_hash(&self, h: &mut gopim_cache::CanonicalHasher) {
        h.write_u8(match self {
            UpdateAccounting::Amortized => 0,
            UpdateAccounting::SteadyEpoch => 1,
            UpdateAccounting::RefreshEpoch => 2,
        });
    }
}

impl gopim_cache::CanonicalHash for WorkloadOptions {
    fn canonical_hash(&self, h: &mut gopim_cache::CanonicalHasher) {
        h.write_tag("pipeline.workload_options/v1");
        h.write_usize(self.micro_batch);
        self.mapping.canonical_hash(h);
        self.selective.canonical_hash(h);
        self.accounting.canonical_hash(h);
        self.params.canonical_hash(h);
        h.write_f64(self.repeated_load_rows_per_edge);
        h.write_u64(self.profile_seed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_options() -> WorkloadOptions {
        WorkloadOptions::default()
    }

    #[test]
    fn ddi_has_eight_stages_matching_table_vi() {
        let wl = GcnWorkload::build(Dataset::Ddi, &small_options());
        assert_eq!(wl.stages().len(), 8);
        let names: Vec<String> = wl.stages().iter().map(StageSpec::name).collect();
        assert_eq!(
            names,
            vec!["CO1", "AG1", "CO2", "AG2", "LC2", "GC2", "LC1", "GC1"]
        );
        // Table VI Serial crossbar counts: [32, 534, 32, 534, …] — ours
        // tile to 32/536.
        assert_eq!(wl.stages()[0].crossbars_per_replica, 32);
        assert_eq!(wl.stages()[1].crossbars_per_replica, 536);
        assert_eq!(wl.stages()[5].crossbars_per_replica, 536); // GC2 maps features
    }

    #[test]
    fn aggregation_dominates_combination() {
        let wl = GcnWorkload::build(Dataset::Ddi, &small_options());
        let co = wl.stages()[0].compute_ns;
        let ag = wl.stages()[1].compute_ns;
        assert!(ag > 40.0 * co, "AG {ag} vs CO {co}");
    }

    #[test]
    fn microbatch_count_is_ceil() {
        let wl = GcnWorkload::build(Dataset::Ddi, &small_options());
        assert_eq!(wl.num_microbatches(), 4267usize.div_ceil(64));
    }

    #[test]
    fn index_mapping_full_update_pacing_is_full_group() {
        let wl = GcnWorkload::build(Dataset::Ddi, &small_options());
        // Without selective updating every micro-batch writes all 64 of
        // its rows into one group.
        let ag = 1;
        let w = wl.write_ns(ag, 0);
        let expected = 64.0 * LatencyParams::paper().row_write_ns();
        assert!((w - expected).abs() < 1e-6, "w={w} expected={expected}");
    }

    #[test]
    fn isu_reduces_pacing_writes() {
        let mut opts = small_options();
        let base = GcnWorkload::build(Dataset::Ddi, &opts);
        opts.mapping = MappingKind::Interleaved;
        opts.selective = Some(SelectivePolicy::with_theta(0.5, 20));
        let isu = GcnWorkload::build(Dataset::Ddi, &opts);
        let worst = |wl: &GcnWorkload| -> f64 {
            (0..wl.num_microbatches())
                .map(|j| wl.write_ns(1, j))
                .fold(0.0, f64::max)
        };
        assert!(
            worst(&isu) < worst(&base) / 8.0,
            "isu {} vs base {}",
            worst(&isu),
            worst(&base)
        );
    }

    #[test]
    fn osu_keeps_worst_case_pacing() {
        // Selective updating *without* interleaving: the busiest
        // micro-batch still writes a full group (paper Fig. 7).
        let mut opts = small_options();
        opts.selective = Some(SelectivePolicy::with_theta(0.5, 20));
        let osu = GcnWorkload::build(Dataset::Ddi, &opts);
        let worst = (0..osu.num_microbatches())
            .map(|j| osu.write_ns(1, j))
            .fold(0.0, f64::max);
        let full = 64.0 * LatencyParams::paper().row_write_ns();
        assert!(worst > 0.95 * full, "worst {worst} vs full {full}");
    }

    #[test]
    fn reflip_penalty_adds_writes() {
        let mut opts = small_options();
        opts.repeated_load_rows_per_edge = 0.5;
        let reflip = GcnWorkload::build(Dataset::Ddi, &opts);
        let base = GcnWorkload::build(Dataset::Ddi, &small_options());
        assert!(reflip.stages()[1].rows_written > 2.0 * base.stages()[1].rows_written);
        assert!(reflip.write_ns(1, 0) > base.write_ns(1, 0));
    }

    #[test]
    fn three_layer_dataset_has_twelve_stages() {
        let wl = GcnWorkload::build(Dataset::Cora, &small_options());
        assert_eq!(wl.stages().len(), 12);
    }

    #[test]
    fn base_crossbars_sums_stage_footprints() {
        let wl = GcnWorkload::build(Dataset::Ddi, &small_options());
        let sum: usize = wl.stages().iter().map(|s| s.crossbars_per_replica).sum();
        assert_eq!(wl.base_crossbars(), sum);
    }
}
