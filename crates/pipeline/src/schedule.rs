//! Pipeline schedule simulation (the paper's Eqs. 3–6).
//!
//! For every micro-batch `j` and stage `i` the schedule respects:
//!
//! - `T_i^j(start) ≥ T_{i−1}^j(end)` — data dependency within a
//!   micro-batch (Eq. 4);
//! - `T_i^j(start) ≥ T_i^{j−c_i}(end)` — replica occupancy (Eq. 3
//!   generalized);
//! - writes serialize per stage (every replica is programmed with the
//!   same update, so the write channel admits one micro-batch at a
//!   time) and precede that micro-batch's compute.
//!
//! Replicas act on two axes, following the paper's §IV-A intra-batch
//! parallelism: up to `B` replicas *split one micro-batch's inputs*
//! (service time `compute / min(R, B)`), and beyond that each group of
//! `B` replicas holds an additional micro-batch in flight
//! (`c = max(1, R / B)` concurrent micro-batches). Either way the
//! stage's steady-state throughput is `R / compute`.
//!
//! With `R_i = 1` everywhere and uniform service times this reduces to
//! the paper's closed form `T_A = Σ T_i + (B−1)·T_max` (Eq. 6), which
//! the tests check.

use crate::workload::GcnWorkload;

/// Pipelining options.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineOptions {
    /// Overlap stages of different micro-batches within a batch
    /// (intra-batch pipelining). When `false` everything runs strictly
    /// sequentially — the paper's `Serial` baseline.
    pub intra_batch: bool,
    /// Overlap the tail of one batch with the head of the next
    /// (inter-batch pipelining under bounded staleness, §IV-A). Only
    /// meaningful when `num_batches > 1`.
    pub inter_batch: bool,
    /// Number of batches to simulate.
    pub num_batches: usize,
}

impl PipelineOptions {
    /// The `Serial` baseline: no pipelining at all.
    pub fn serial() -> Self {
        PipelineOptions {
            intra_batch: false,
            inter_batch: false,
            num_batches: 1,
        }
    }

    /// Intra-batch pipelining only (SlimGNN-like / ReGraphX style).
    pub fn intra_only() -> Self {
        PipelineOptions {
            intra_batch: true,
            inter_batch: false,
            num_batches: 1,
        }
    }
}

impl Default for PipelineOptions {
    fn default() -> Self {
        PipelineOptions {
            intra_batch: true,
            inter_batch: true,
            num_batches: 1,
        }
    }
}

/// Per-stage activity accounting from one simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct StageActivity {
    /// Stage name (e.g. `AG1`).
    pub name: String,
    /// Replicas assigned.
    pub replicas: usize,
    /// Summed compute service time across micro-batches, ns.
    pub busy_compute_ns: f64,
    /// Summed write time across micro-batches, ns.
    pub busy_write_ns: f64,
    /// Crossbar-level idle share: one minus the fraction of
    /// makespan × replica-capacity actually doing work
    /// (`(Σ compute / R + Σ write) / makespan`). This is the paper's
    /// Fig. 4 quantity — Combination crossbars idle > 97 % under a
    /// plain pipeline.
    pub idle_fraction: f64,
    /// Stage-occupancy idle share: the fraction of the makespan during
    /// which the stage had *no* micro-batch in flight (dispatch, write
    /// or compute). This is the Fig. 15 quantity that GoPIM's replicas
    /// reduce by tens of points.
    pub stage_idle_fraction: f64,
}

/// Result of simulating a pipeline schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineResult {
    /// End-to-end makespan, ns.
    pub makespan_ns: f64,
    /// Sum of every stage's service time over every micro-batch (the
    /// `Serial` execution time), ns.
    pub total_service_ns: f64,
    /// Per-stage activity.
    pub stages: Vec<StageActivity>,
}

impl PipelineResult {
    /// Mean idle fraction across stages.
    pub fn mean_idle_fraction(&self) -> f64 {
        if self.stages.is_empty() {
            return 0.0;
        }
        self.stages.iter().map(|s| s.idle_fraction).sum::<f64>() / self.stages.len() as f64
    }
}

/// Simulates the pipeline for a given per-stage replica assignment.
///
/// # Panics
///
/// Panics if `replicas.len() != workload.stages().len()` or any replica
/// count is zero.
pub fn simulate(
    workload: &GcnWorkload,
    replicas: &[usize],
    options: &PipelineOptions,
) -> PipelineResult {
    simulate_with_sink(workload, replicas, options, &mut |_| {})
}

/// One scheduled (stage, micro-batch) occupancy, emitted by
/// [`simulate_traced`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Stage index in the 4L chain.
    pub stage: usize,
    /// Batch index.
    pub batch: usize,
    /// Micro-batch index within the batch.
    pub microbatch: usize,
    /// Dispatch start, ns.
    pub dispatch_ns: f64,
    /// Write start, ns.
    pub write_start_ns: f64,
    /// Compute start, ns.
    pub compute_start_ns: f64,
    /// Completion, ns.
    pub end_ns: f64,
}

/// Like [`simulate`] but also returns every scheduled interval — the
/// input to [`crate::trace::render_gantt`].
pub fn simulate_traced(
    workload: &GcnWorkload,
    replicas: &[usize],
    options: &PipelineOptions,
) -> (PipelineResult, Vec<TraceEvent>) {
    let mut events = Vec::new();
    let result = simulate_with_sink(workload, replicas, options, &mut |e| events.push(e));
    (result, events)
}

fn simulate_with_sink(
    workload: &GcnWorkload,
    replicas: &[usize],
    options: &PipelineOptions,
    sink: &mut dyn FnMut(TraceEvent),
) -> PipelineResult {
    let stages = workload.stages();
    assert_eq!(replicas.len(), stages.len(), "one replica count per stage");
    assert!(
        replicas.iter().all(|&r| r > 0),
        "every stage needs at least one replica"
    );
    let n_mb = workload.num_microbatches();
    let s = stages.len();
    let _span = gopim_obs::span!("pipeline.simulate", s, n_mb);

    let mut busy_compute = vec![0.0f64; s];
    let mut busy_write = vec![0.0f64; s];
    let mut busy_dispatch = vec![0.0f64; s];
    // Union length of the intervals during which each stage has work
    // in flight (drives the Fig. 4 / Fig. 15 idle metric).
    let mut active_ns = vec![0.0f64; s];
    let mut active_end = vec![0.0f64; s];
    let mut makespan = 0.0f64;

    let overhead = workload.overhead_ns();
    if !options.intra_batch {
        // Strictly sequential: the makespan is the total service time.
        let mut t = 0.0;
        for batch in 0..options.num_batches {
            for j in 0..n_mb {
                for (i, st) in stages.iter().enumerate() {
                    let w = workload.write_ns(i, j);
                    sink(TraceEvent {
                        stage: i,
                        batch,
                        microbatch: j,
                        dispatch_ns: t,
                        write_start_ns: t + overhead,
                        compute_start_ns: t + overhead + w,
                        end_ns: t + overhead + w + st.compute_ns,
                    });
                    t += overhead + w + st.compute_ns;
                    busy_compute[i] += st.compute_ns;
                    busy_write[i] += w;
                    busy_dispatch[i] += overhead;
                    active_ns[i] += overhead + w + st.compute_ns;
                }
            }
        }
        makespan = t;
        return finish(
            workload,
            busy_compute,
            busy_write,
            busy_dispatch,
            active_ns,
            makespan,
            replicas,
        );
    }

    // Pipelined simulation.
    // Per stage: min(R, B) replicas split one micro-batch's inputs
    // (latency), while the stage's aggregate throughput is R / compute
    // micro-batches per unit time (modeled as a token bucket:
    // consecutive dispatches are spaced compute / R apart).
    let b = workload.micro_batch();
    let service: Vec<f64> = stages
        .iter()
        .enumerate()
        .map(|(i, st)| st.compute_ns / replicas[i].min(b) as f64)
        .collect();
    let spacing: Vec<f64> = stages
        .iter()
        .enumerate()
        .map(|(i, st)| st.compute_ns / replicas[i] as f64)
        .collect();
    // stage_ready[i]: earliest time stage i can dispatch its next
    // micro-batch; w_chan[i]: the stage's write-channel availability.
    let mut stage_ready = vec![0.0f64; s];
    let mut w_chan = vec![0.0f64; s];
    let mut batch_barrier = 0.0f64;

    for batch in 0..options.num_batches {
        let mut batch_end = 0.0f64;
        for j in 0..n_mb {
            let mut prev_end = if options.inter_batch || batch == 0 {
                0.0
            } else {
                batch_barrier
            };
            for (i, st) in stages.iter().enumerate() {
                let w = workload.write_ns(i, j);
                // Dispatch overhead, then the write, then compute; the
                // write channel serializes micro-batches.
                let d_start = prev_end.max(w_chan[i]);
                let w_start = d_start + overhead;
                let w_end = w_start + w;
                w_chan[i] = w_end;
                let c_start = w_end.max(stage_ready[i]);
                let c_end = c_start + service[i];
                stage_ready[i] = c_start + spacing[i];
                sink(TraceEvent {
                    stage: i,
                    batch,
                    microbatch: j,
                    dispatch_ns: d_start,
                    write_start_ns: w_start,
                    compute_start_ns: c_start,
                    end_ns: c_end,
                });
                prev_end = c_end;
                busy_compute[i] += st.compute_ns;
                busy_write[i] += w;
                busy_dispatch[i] += overhead;
                // Interval-union occupancy time: [d_start, c_end),
                // merged with whatever this stage already covered.
                // Starts are non-decreasing in practice, so clamping to
                // the previous occupancy end is exact.
                let inc = c_end - d_start.max(active_end[i]);
                if inc > 0.0 {
                    active_ns[i] += inc;
                }
                active_end[i] = active_end[i].max(c_end);
            }
            batch_end = batch_end.max(prev_end);
        }
        batch_barrier = batch_end;
        makespan = makespan.max(batch_end);
    }
    finish(
        workload,
        busy_compute,
        busy_write,
        busy_dispatch,
        active_ns,
        makespan,
        replicas,
    )
}

#[allow(clippy::too_many_arguments)]
fn finish(
    workload: &GcnWorkload,
    busy_compute: Vec<f64>,
    busy_write: Vec<f64>,
    busy_dispatch: Vec<f64>,
    active_ns: Vec<f64>,
    makespan: f64,
    replicas: &[usize],
) -> PipelineResult {
    // Per-stage duration telemetry (compute / write / dispatch), keyed
    // by stage name. Dynamic names go through the registry directly;
    // the whole block is skipped when metrics are off.
    if gopim_obs::metrics_enabled() {
        let registry = gopim_obs::metrics::global();
        for (i, st) in workload.stages().iter().enumerate() {
            let name = st.name();
            registry
                .counter(&format!("pipeline.stage.{name}.compute_ns"))
                .add_ns(busy_compute[i]);
            registry
                .counter(&format!("pipeline.stage.{name}.write_ns"))
                .add_ns(busy_write[i]);
            registry
                .counter(&format!("pipeline.stage.{name}.dispatch_ns"))
                .add_ns(busy_dispatch[i]);
        }
        registry.counter("pipeline.simulate.calls").add(1);
    }
    let total_service: f64 = busy_compute.iter().sum::<f64>() + busy_write.iter().sum::<f64>();
    let stages = workload
        .stages()
        .iter()
        .enumerate()
        .map(|(i, st)| {
            let (idle, stage_idle) = if makespan > 0.0 {
                let work = busy_compute[i] / replicas[i] as f64 + busy_write[i];
                (
                    (1.0 - work / makespan).clamp(0.0, 1.0),
                    (1.0 - active_ns[i] / makespan).clamp(0.0, 1.0),
                )
            } else {
                (0.0, 0.0)
            };
            StageActivity {
                name: st.name(),
                replicas: replicas[i],
                busy_compute_ns: busy_compute[i],
                busy_write_ns: busy_write[i],
                idle_fraction: idle,
                stage_idle_fraction: stage_idle,
            }
        })
        .collect();
    PipelineResult {
        makespan_ns: makespan,
        total_service_ns: total_service,
        stages,
    }
}

impl gopim_cache::CanonicalHash for PipelineOptions {
    fn canonical_hash(&self, h: &mut gopim_cache::CanonicalHasher) {
        h.write_tag("pipeline.options/v1");
        h.write_bool(self.intra_batch);
        h.write_bool(self.inter_batch);
        h.write_usize(self.num_batches);
    }
}

impl gopim_cache::CacheValue for StageActivity {
    fn encode(&self, e: &mut gopim_cache::Encoder) {
        e.put_str(&self.name);
        e.put_usize(self.replicas);
        e.put_f64(self.busy_compute_ns);
        e.put_f64(self.busy_write_ns);
        e.put_f64(self.idle_fraction);
        e.put_f64(self.stage_idle_fraction);
    }
    fn decode(d: &mut gopim_cache::Decoder<'_>) -> Option<Self> {
        Some(StageActivity {
            name: d.take_str()?,
            replicas: d.take_usize()?,
            busy_compute_ns: d.take_f64()?,
            busy_write_ns: d.take_f64()?,
            idle_fraction: d.take_f64()?,
            stage_idle_fraction: d.take_f64()?,
        })
    }
}

impl gopim_cache::CacheValue for PipelineResult {
    fn encode(&self, e: &mut gopim_cache::Encoder) {
        e.put_f64(self.makespan_ns);
        e.put_f64(self.total_service_ns);
        self.stages.encode(e);
    }
    fn decode(d: &mut gopim_cache::Decoder<'_>) -> Option<Self> {
        Some(PipelineResult {
            makespan_ns: d.take_f64()?,
            total_service_ns: d.take_f64()?,
            stages: Vec::decode(d)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{GcnWorkload, WorkloadOptions};
    use gopim_graph::datasets::Dataset;

    fn ddi() -> GcnWorkload {
        GcnWorkload::build(Dataset::Ddi, &WorkloadOptions::default())
    }

    #[test]
    fn serial_makespan_equals_total_service() {
        let wl = ddi();
        let r = vec![1; wl.stages().len()];
        let res = simulate(&wl, &r, &PipelineOptions::serial());
        let overhead_total = wl.overhead_ns() * (wl.num_microbatches() * wl.stages().len()) as f64;
        assert!((res.makespan_ns - res.total_service_ns - overhead_total).abs() < 1e-3);
    }

    #[test]
    fn pipelining_beats_serial() {
        let wl = ddi();
        let r = vec![1; wl.stages().len()];
        let serial = simulate(&wl, &r, &PipelineOptions::serial());
        let piped = simulate(&wl, &r, &PipelineOptions::intra_only());
        assert!(piped.makespan_ns < 0.6 * serial.makespan_ns);
    }

    #[test]
    fn replicas_shorten_the_bottleneck() {
        let wl = ddi();
        let s = wl.stages().len();
        let base = simulate(&wl, &vec![1; s], &PipelineOptions::default());
        // Give the aggregation-style stages 8 replicas each.
        let mut r = vec![1; s];
        for (i, st) in wl.stages().iter().enumerate() {
            if st.kind.maps_features() {
                r[i] = 8;
            }
        }
        let boosted = simulate(&wl, &r, &PipelineOptions::default());
        assert!(
            boosted.makespan_ns < 0.3 * base.makespan_ns,
            "boosted {} vs base {}",
            boosted.makespan_ns,
            base.makespan_ns
        );
    }

    #[test]
    fn closed_form_eq6_holds_for_unit_replicas() {
        // With R_i = 1, uniform writes folded into service, the
        // makespan must match Σ T_i + (M−1)·T_max within the write
        // channel's second-order effects.
        let wl = ddi();
        let s = wl.stages().len();
        let res = simulate(&wl, &vec![1; s], &PipelineOptions::intra_only());
        let n_mb = wl.num_microbatches() as f64;
        // Build per-stage mean service times.
        let services: Vec<f64> = wl
            .stages()
            .iter()
            .enumerate()
            .map(|(i, st)| {
                let mean_w: f64 = (0..wl.num_microbatches())
                    .map(|j| wl.write_ns(i, j))
                    .sum::<f64>()
                    / n_mb;
                st.compute_ns + mean_w + wl.overhead_ns()
            })
            .collect();
        let t_max = services.iter().cloned().fold(0.0, f64::max);
        let closed = services.iter().sum::<f64>() + (n_mb - 1.0) * t_max;
        let rel = (res.makespan_ns - closed).abs() / closed;
        assert!(
            rel < 0.05,
            "simulated {} vs closed-form {}",
            res.makespan_ns,
            closed
        );
    }

    #[test]
    fn inter_batch_overlap_reduces_multi_batch_makespan() {
        let wl = ddi();
        let s = wl.stages().len();
        let with = PipelineOptions {
            num_batches: 3,
            ..PipelineOptions::default()
        };
        let without = PipelineOptions {
            num_batches: 3,
            ..PipelineOptions::intra_only()
        };
        let a = simulate(&wl, &vec![1; s], &with);
        let b = simulate(&wl, &vec![1; s], &without);
        assert!(a.makespan_ns < b.makespan_ns);
    }

    #[test]
    fn combination_stages_idle_most_of_the_time() {
        // The paper's Fig. 4 observation: crossbars mapped for CO
        // stages idle > 97 % under a plain pipeline.
        let wl = ddi();
        let s = wl.stages().len();
        let res = simulate(&wl, &vec![1; s], &PipelineOptions::intra_only());
        for st in &res.stages {
            if st.name.starts_with("CO") {
                assert!(
                    st.idle_fraction > 0.9,
                    "{}: idle {}",
                    st.name,
                    st.idle_fraction
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "one replica count per stage")]
    fn wrong_replica_len_rejected() {
        let wl = ddi();
        let _ = simulate(&wl, &[1, 1], &PipelineOptions::default());
    }
}
