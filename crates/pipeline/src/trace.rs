//! Text Gantt rendering of a traced schedule.
//!
//! Useful for inspecting small pipelines (the paper's Fig. 5 / Fig. 10
//! style timelines) directly in a terminal.

use crate::schedule::TraceEvent;
use crate::workload::GcnWorkload;

/// Renders the traced schedule as one text lane per stage, `width`
/// characters across the makespan. `#` marks compute, `w` the write
/// window, `.` dispatch overhead, space idle.
///
/// A schedule with no positive finite end time (no events, all
/// zero-duration, or NaN-poisoned inputs) renders as a labeled
/// one-line note rather than an empty string, so a blank Gantt is
/// always distinguishable from a dropped one.
///
/// # Panics
///
/// Panics if `width == 0`.
pub fn render_gantt(workload: &GcnWorkload, events: &[TraceEvent], width: usize) -> String {
    assert!(width > 0, "width must be positive");
    let stages = workload.stages();
    // NaN-safe: `f64::max` would propagate a NaN end time into the
    // scale; non-finite ends are excluded from the makespan instead.
    let makespan = events
        .iter()
        .map(|e| e.end_ns)
        .filter(|t| t.is_finite())
        .fold(0.0, f64::max);
    if makespan <= 0.0 {
        return "(empty schedule: no events with positive duration)\n".to_string();
    }
    let scale = width as f64 / makespan;
    let col = |t: f64| -> usize { ((t * scale) as usize).min(width - 1) };
    let mut lanes: Vec<Vec<u8>> = vec![vec![b' '; width]; stages.len()];
    // Paint lowest-priority first so compute overwrites write overwrites
    // dispatch.
    for e in events {
        let lane = &mut lanes[e.stage];
        for cell in lane
            .iter_mut()
            .take(col(e.write_start_ns) + 1)
            .skip(col(e.dispatch_ns))
        {
            if *cell == b' ' {
                *cell = b'.';
            }
        }
        for cell in lane
            .iter_mut()
            .take(col(e.compute_start_ns) + 1)
            .skip(col(e.write_start_ns))
        {
            if *cell != b'#' {
                *cell = b'w';
            }
        }
        for cell in lane
            .iter_mut()
            .take(col(e.end_ns) + 1)
            .skip(col(e.compute_start_ns))
        {
            *cell = b'#';
        }
    }
    let mut out = String::new();
    for (i, lane) in lanes.iter().enumerate() {
        out.push_str(&format!("{:>4} |", stages[i].name()));
        out.push_str(&String::from_utf8_lossy(lane));
        out.push_str("|\n");
    }
    out
}

/// Exports a traced schedule into the telemetry collector as one
/// simulated Chrome-trace track labeled `label`: one lane per stage,
/// and per trace event a `sim.dispatch`, `sim.write` and `sim.compute`
/// interval in simulated nanoseconds. No-op when span collection is
/// off ([`gopim_obs::trace_enabled`]).
pub fn export_spans(workload: &GcnWorkload, events: &[TraceEvent], label: &str) {
    if !gopim_obs::trace_enabled() {
        return;
    }
    let stages = workload.stages();
    let pid = gopim_obs::span::open_sim_track(label);
    for (i, st) in stages.iter().enumerate() {
        gopim_obs::span::name_sim_lane(pid, i as u64, &st.name());
    }
    for e in events {
        let lane = e.stage as u64;
        let args = [
            ("batch", e.batch as f64),
            ("microbatch", e.microbatch as f64),
        ];
        let name = stages
            .get(e.stage)
            .map(|st| st.name())
            .unwrap_or_else(|| format!("stage{}", e.stage));
        gopim_obs::span::record_sim(
            pid,
            lane,
            &name,
            "sim.dispatch",
            e.dispatch_ns,
            e.write_start_ns,
            &args,
        );
        gopim_obs::span::record_sim(
            pid,
            lane,
            &name,
            "sim.write",
            e.write_start_ns,
            e.compute_start_ns,
            &args,
        );
        gopim_obs::span::record_sim(
            pid,
            lane,
            &name,
            "sim.compute",
            e.compute_start_ns,
            e.end_ns,
            &args,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{simulate, simulate_traced, PipelineOptions};
    use crate::workload::{GcnWorkload, WorkloadOptions};
    use gopim_graph::datasets::Dataset;

    fn setup() -> GcnWorkload {
        GcnWorkload::build(Dataset::Ddi, &WorkloadOptions::default())
    }

    #[test]
    fn traced_run_matches_untraced_makespan() {
        let wl = setup();
        let r = vec![2; wl.stages().len()];
        let plain = simulate(&wl, &r, &PipelineOptions::default());
        let (traced, events) = simulate_traced(&wl, &r, &PipelineOptions::default());
        assert_eq!(plain.makespan_ns, traced.makespan_ns);
        assert_eq!(events.len(), wl.num_microbatches() * wl.stages().len());
        // Events respect internal ordering.
        for e in &events {
            assert!(e.dispatch_ns <= e.write_start_ns);
            assert!(e.write_start_ns <= e.compute_start_ns);
            assert!(e.compute_start_ns <= e.end_ns);
        }
    }

    #[test]
    fn dependencies_hold_in_the_trace() {
        let wl = setup();
        let r = vec![1; wl.stages().len()];
        let (_, events) = simulate_traced(&wl, &r, &PipelineOptions::intra_only());
        let find = |stage: usize, mb: usize| -> &crate::schedule::TraceEvent {
            events
                .iter()
                .find(|e| e.stage == stage && e.microbatch == mb)
                .unwrap()
        };
        // Eq. 4: stage i of micro-batch j starts after stage i−1.
        for j in [0usize, 5, 20] {
            for i in 1..wl.stages().len() {
                assert!(find(i, j).dispatch_ns >= find(i - 1, j).end_ns - 1e-9);
            }
        }
        // Write channel serializes micro-batches per stage.
        for i in 0..wl.stages().len() {
            assert!(find(i, 1).write_start_ns >= find(i, 0).write_start_ns);
        }
    }

    #[test]
    fn gantt_renders_one_lane_per_stage() {
        let wl = setup();
        let r = vec![1; wl.stages().len()];
        let (_, events) = simulate_traced(&wl, &r, &PipelineOptions::intra_only());
        let gantt = render_gantt(&wl, &events, 80);
        let lines: Vec<&str> = gantt.lines().collect();
        assert_eq!(lines.len(), wl.stages().len());
        assert!(lines[0].contains("CO1"));
        assert!(gantt.contains('#'));
    }

    #[test]
    fn empty_or_zero_duration_schedules_render_a_label() {
        let wl = setup();
        let empty = render_gantt(&wl, &[], 40);
        assert!(empty.contains("empty schedule"), "got: {empty:?}");
        // All-zero durations: same labeled note, not a blank string.
        let zero = vec![TraceEvent {
            stage: 0,
            batch: 0,
            microbatch: 0,
            dispatch_ns: 0.0,
            write_start_ns: 0.0,
            compute_start_ns: 0.0,
            end_ns: 0.0,
        }];
        assert!(render_gantt(&wl, &zero, 40).contains("empty schedule"));
    }

    #[test]
    fn nan_end_times_do_not_poison_the_makespan() {
        let wl = setup();
        let mk = |end: f64| TraceEvent {
            stage: 0,
            batch: 0,
            microbatch: 0,
            dispatch_ns: 0.0,
            write_start_ns: 0.0,
            compute_start_ns: 0.0,
            end_ns: end,
        };
        // A NaN event alongside a real one: the real makespan wins and
        // the compute interval still paints.
        let gantt = render_gantt(&wl, &[mk(f64::NAN), mk(100.0)], 40);
        assert!(gantt.contains('#'), "got: {gantt:?}");
        // Only non-finite ends: labeled empty result.
        let gantt = render_gantt(&wl, &[mk(f64::NAN), mk(f64::INFINITY)], 40);
        assert!(gantt.contains("empty schedule"));
    }

    #[test]
    fn lane_painting_priority_is_compute_over_write_over_dispatch() {
        let wl = setup();
        // Two overlapping events in stage 0: one all-dispatch, then one
        // whose write and compute windows cover the same columns. The
        // later paints must win where phases overlap: '#' beats 'w'
        // beats '.'.
        let width = 100usize;
        let long_dispatch = TraceEvent {
            stage: 0,
            batch: 0,
            microbatch: 0,
            dispatch_ns: 0.0,
            write_start_ns: 100.0,
            compute_start_ns: 100.0,
            end_ns: 100.0,
        };
        let worker = TraceEvent {
            stage: 0,
            batch: 0,
            microbatch: 1,
            dispatch_ns: 0.0,
            write_start_ns: 0.0,
            compute_start_ns: 50.0,
            end_ns: 100.0,
        };
        let gantt = render_gantt(&wl, &[long_dispatch, worker], width);
        let lane0 = gantt.lines().next().unwrap();
        let cells = &lane0[lane0.find('|').unwrap() + 1..lane0.rfind('|').unwrap()];
        // First half: write window over dispatch ⇒ 'w'; second half:
        // compute over everything ⇒ '#'. No '.' survives underneath.
        assert_eq!(&cells[10..11], "w", "write must overwrite dispatch");
        assert_eq!(&cells[60..61], "#", "compute must overwrite write");
        assert!(
            !cells.contains('.'),
            "dispatch visible under overlap: {cells:?}"
        );
        // And compute is never overwritten by a later write window.
        let gantt = render_gantt(&wl, &[worker, long_dispatch], width);
        let lane0 = gantt.lines().next().unwrap();
        let cells = &lane0[lane0.find('|').unwrap() + 1..lane0.rfind('|').unwrap()];
        assert_eq!(&cells[60..61], "#", "later dispatch must not cover compute");
    }

    #[test]
    fn export_spans_mirrors_the_trace_events() {
        let wl = setup();
        let r = vec![1; wl.stages().len()];
        let (_, events) = simulate_traced(&wl, &r, &PipelineOptions::intra_only());
        gopim_obs::set_trace_enabled(true);
        let _ = gopim_obs::span::drain();
        export_spans(&wl, &events, "unit/test");
        let spans = gopim_obs::span::drain();
        gopim_obs::set_trace_enabled(false);
        let sim_compute = spans.iter().filter(|e| e.cat == "sim.compute").count();
        let sim_write = spans.iter().filter(|e| e.cat == "sim.write").count();
        let sim_dispatch = spans.iter().filter(|e| e.cat == "sim.dispatch").count();
        assert_eq!(sim_compute, events.len());
        assert_eq!(sim_write, events.len());
        assert_eq!(sim_dispatch, events.len());
        assert!(spans
            .iter()
            .any(|e| e.cat == "meta.process_name" && e.name.contains("unit/test")));
        // Lane labels cover every stage.
        let lanes = spans.iter().filter(|e| e.cat == "meta.thread_name").count();
        assert_eq!(lanes, wl.stages().len());
    }

    #[test]
    fn serial_trace_has_no_overlap() {
        let wl = setup();
        let r = vec![1; wl.stages().len()];
        let (_, events) = simulate_traced(&wl, &r, &PipelineOptions::serial());
        let mut sorted = events.clone();
        sorted.sort_by(|a, b| a.dispatch_ns.partial_cmp(&b.dispatch_ns).unwrap());
        for pair in sorted.windows(2) {
            assert!(pair[1].dispatch_ns >= pair[0].end_ns - 1e-3); // f64 ulp at ~1e8 ns
        }
    }
}
