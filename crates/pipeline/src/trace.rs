//! Text Gantt rendering of a traced schedule.
//!
//! Useful for inspecting small pipelines (the paper's Fig. 5 / Fig. 10
//! style timelines) directly in a terminal.

use crate::schedule::TraceEvent;
use crate::workload::GcnWorkload;

/// Renders the traced schedule as one text lane per stage, `width`
/// characters across the makespan. `#` marks compute, `w` the write
/// window, `.` dispatch overhead, space idle.
///
/// # Panics
///
/// Panics if `width == 0`.
pub fn render_gantt(workload: &GcnWorkload, events: &[TraceEvent], width: usize) -> String {
    assert!(width > 0, "width must be positive");
    let stages = workload.stages();
    let makespan = events.iter().map(|e| e.end_ns).fold(0.0, f64::max);
    if makespan <= 0.0 {
        return String::new();
    }
    let scale = width as f64 / makespan;
    let col = |t: f64| -> usize { ((t * scale) as usize).min(width - 1) };
    let mut lanes: Vec<Vec<u8>> = vec![vec![b' '; width]; stages.len()];
    // Paint lowest-priority first so compute overwrites write overwrites
    // dispatch.
    for e in events {
        let lane = &mut lanes[e.stage];
        for cell in lane
            .iter_mut()
            .take(col(e.write_start_ns) + 1)
            .skip(col(e.dispatch_ns))
        {
            if *cell == b' ' {
                *cell = b'.';
            }
        }
        for cell in lane
            .iter_mut()
            .take(col(e.compute_start_ns) + 1)
            .skip(col(e.write_start_ns))
        {
            if *cell != b'#' {
                *cell = b'w';
            }
        }
        for cell in lane
            .iter_mut()
            .take(col(e.end_ns) + 1)
            .skip(col(e.compute_start_ns))
        {
            *cell = b'#';
        }
    }
    let mut out = String::new();
    for (i, lane) in lanes.iter().enumerate() {
        out.push_str(&format!("{:>4} |", stages[i].name()));
        out.push_str(std::str::from_utf8(lane).expect("ascii lane"));
        out.push_str("|\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{simulate, simulate_traced, PipelineOptions};
    use crate::workload::{GcnWorkload, WorkloadOptions};
    use gopim_graph::datasets::Dataset;

    fn setup() -> GcnWorkload {
        GcnWorkload::build(Dataset::Ddi, &WorkloadOptions::default())
    }

    #[test]
    fn traced_run_matches_untraced_makespan() {
        let wl = setup();
        let r = vec![2; wl.stages().len()];
        let plain = simulate(&wl, &r, &PipelineOptions::default());
        let (traced, events) = simulate_traced(&wl, &r, &PipelineOptions::default());
        assert_eq!(plain.makespan_ns, traced.makespan_ns);
        assert_eq!(events.len(), wl.num_microbatches() * wl.stages().len());
        // Events respect internal ordering.
        for e in &events {
            assert!(e.dispatch_ns <= e.write_start_ns);
            assert!(e.write_start_ns <= e.compute_start_ns);
            assert!(e.compute_start_ns <= e.end_ns);
        }
    }

    #[test]
    fn dependencies_hold_in_the_trace() {
        let wl = setup();
        let r = vec![1; wl.stages().len()];
        let (_, events) = simulate_traced(&wl, &r, &PipelineOptions::intra_only());
        let find = |stage: usize, mb: usize| -> &crate::schedule::TraceEvent {
            events
                .iter()
                .find(|e| e.stage == stage && e.microbatch == mb)
                .unwrap()
        };
        // Eq. 4: stage i of micro-batch j starts after stage i−1.
        for j in [0usize, 5, 20] {
            for i in 1..wl.stages().len() {
                assert!(find(i, j).dispatch_ns >= find(i - 1, j).end_ns - 1e-9);
            }
        }
        // Write channel serializes micro-batches per stage.
        for i in 0..wl.stages().len() {
            assert!(find(i, 1).write_start_ns >= find(i, 0).write_start_ns);
        }
    }

    #[test]
    fn gantt_renders_one_lane_per_stage() {
        let wl = setup();
        let r = vec![1; wl.stages().len()];
        let (_, events) = simulate_traced(&wl, &r, &PipelineOptions::intra_only());
        let gantt = render_gantt(&wl, &events, 80);
        let lines: Vec<&str> = gantt.lines().collect();
        assert_eq!(lines.len(), wl.stages().len());
        assert!(lines[0].contains("CO1"));
        assert!(gantt.contains('#'));
    }

    #[test]
    fn serial_trace_has_no_overlap() {
        let wl = setup();
        let r = vec![1; wl.stages().len()];
        let (_, events) = simulate_traced(&wl, &r, &PipelineOptions::serial());
        let mut sorted = events.clone();
        sorted.sort_by(|a, b| a.dispatch_ns.partial_cmp(&b.dispatch_ns).unwrap());
        for pair in sorted.windows(2) {
            assert!(pair[1].dispatch_ns >= pair[0].end_ns - 1e-3); // f64 ulp at ~1e8 ns
        }
    }
}
