//! Stage taxonomy and per-stage specifications.

use std::fmt;

/// The four stage kinds of GCN training (paper §II-A, Fig. 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StageKind {
    /// Forward feature transformation (`F·W`), weights mapped.
    Combination,
    /// Forward neighborhood aggregation (`A·C`), features mapped.
    Aggregation,
    /// Backward loss/error propagation; same dataflow as Combination
    /// (§IV-B).
    LossCalc,
    /// Backward gradient compute; aggregates errors over the adjacency
    /// with the feature matrix mapped, plus SRAM weight-gradient work.
    GradCompute,
}

impl StageKind {
    /// Short label used in reports (CO/AG/LC/GC).
    pub fn label(self) -> &'static str {
        match self {
            StageKind::Combination => "CO",
            StageKind::Aggregation => "AG",
            StageKind::LossCalc => "LC",
            StageKind::GradCompute => "GC",
        }
    }

    /// Whether this stage maps the vertex-feature matrix (and therefore
    /// pays vertex-update writes): AG and GC per the paper's Table VI
    /// crossbar counts.
    pub fn maps_features(self) -> bool {
        matches!(self, StageKind::Aggregation | StageKind::GradCompute)
    }
}

impl fmt::Display for StageKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The canonical `4L`-stage order of an `L`-layer GCN:
/// `CO1, AG1, …, COL, AGL, LCL, GCL, …, LC1, GC1`.
pub fn stage_order(num_layers: usize) -> Vec<(StageKind, usize)> {
    let mut order = Vec::with_capacity(4 * num_layers);
    for l in 0..num_layers {
        order.push((StageKind::Combination, l));
        order.push((StageKind::Aggregation, l));
    }
    for l in (0..num_layers).rev() {
        order.push((StageKind::LossCalc, l));
        order.push((StageKind::GradCompute, l));
    }
    order
}

/// Everything the scheduler, allocator and energy model need to know
/// about one pipeline stage.
#[derive(Debug, Clone, PartialEq)]
pub struct StageSpec {
    /// Stage kind.
    pub kind: StageKind,
    /// 0-based GCN layer this stage belongs to.
    pub layer: usize,
    /// Position in the 4L chain.
    pub index: usize,
    /// Rows of the matrix mapped on crossbars for this stage.
    pub mapped_rows: usize,
    /// Columns of the mapped matrix.
    pub mapped_cols: usize,
    /// Crossbars one replica of the mapped matrix occupies.
    pub crossbars_per_replica: usize,
    /// Replica-parallelizable service time per micro-batch, ns.
    pub compute_ns: f64,
    /// ReRAM write time per micro-batch, ns — *not* reduced by
    /// replicas (every replica is programmed, in parallel with the
    /// others, but the write channel serializes micro-batches).
    pub write_ns: f64,
    /// MVM issues per micro-batch (for energy accounting): the number
    /// of (input vector × crossbar) activations.
    pub mvm_crossbar_issues: u64,
    /// Crossbar rows programmed per micro-batch (for energy).
    pub rows_written: f64,
}

impl StageSpec {
    /// Total service time per micro-batch at one replica, ns.
    pub fn service_ns(&self) -> f64 {
        self.compute_ns + self.write_ns
    }

    /// Human-readable stage name like `AG1` (1-based layer, as in the
    /// paper's Table VI).
    pub fn name(&self) -> String {
        format!("{}{}", self.kind.label(), self.layer + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_layer_order_matches_fig2() {
        let order = stage_order(2);
        let names: Vec<String> = order
            .iter()
            .map(|(k, l)| format!("{}{}", k.label(), l + 1))
            .collect();
        assert_eq!(
            names,
            vec!["CO1", "AG1", "CO2", "AG2", "LC2", "GC2", "LC1", "GC1"]
        );
    }

    #[test]
    fn three_layer_order_has_12_stages() {
        let order = stage_order(3);
        assert_eq!(order.len(), 12);
        assert_eq!(order[11], (StageKind::GradCompute, 0));
    }

    #[test]
    fn feature_mapping_stages() {
        assert!(StageKind::Aggregation.maps_features());
        assert!(StageKind::GradCompute.maps_features());
        assert!(!StageKind::Combination.maps_features());
        assert!(!StageKind::LossCalc.maps_features());
    }

    #[test]
    fn service_is_compute_plus_write() {
        let s = StageSpec {
            kind: StageKind::Aggregation,
            layer: 0,
            index: 1,
            mapped_rows: 10,
            mapped_cols: 10,
            crossbars_per_replica: 2,
            compute_ns: 100.0,
            write_ns: 50.0,
            mvm_crossbar_issues: 0,
            rows_written: 0.0,
        };
        assert_eq!(s.service_ns(), 150.0);
        assert_eq!(s.name(), "AG1");
    }
}
