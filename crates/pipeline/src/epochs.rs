//! Multi-epoch training timeline under the ISU update schedule.
//!
//! The amortized write model is right for steady-state totals, but the
//! actual schedule alternates: most epochs write only the important
//! vertices, and every `stale_period`-th epoch bursts a full refresh
//! (§VI-A). [`simulate_training`] runs the epoch sequence with the
//! per-kind workloads and reports the timeline — making the refresh
//! bursts visible instead of averaged away.

use crate::schedule::{simulate, PipelineOptions};
use crate::workload::GcnWorkload;

/// Timeline of a multi-epoch training run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainingTimeline {
    /// Per-epoch makespans, ns.
    pub epoch_makespans_ns: Vec<f64>,
    /// Indices of the refresh (burst) epochs.
    pub refresh_epochs: Vec<usize>,
}

impl TrainingTimeline {
    /// Total training time, ns.
    pub fn total_ns(&self) -> f64 {
        self.epoch_makespans_ns.iter().sum()
    }

    /// Mean epoch makespan, ns.
    pub fn mean_epoch_ns(&self) -> f64 {
        if self.epoch_makespans_ns.is_empty() {
            return 0.0;
        }
        self.total_ns() / self.epoch_makespans_ns.len() as f64
    }
}

/// Simulates `epochs` training epochs: `steady` is the workload of a
/// non-refresh epoch, `refresh` the workload of a full-refresh epoch
/// (every `stale_period`-th, starting at 0).
///
/// # Panics
///
/// Panics if `stale_period == 0` or the workloads have different stage
/// counts.
pub fn simulate_training(
    steady: &GcnWorkload,
    refresh: &GcnWorkload,
    stale_period: usize,
    epochs: usize,
    replicas: &[usize],
    options: &PipelineOptions,
) -> TrainingTimeline {
    assert!(stale_period > 0, "stale period must be positive");
    assert_eq!(
        steady.stages().len(),
        refresh.stages().len(),
        "workloads must have matching stage counts"
    );
    let steady_ns = simulate(steady, replicas, options).makespan_ns;
    let refresh_ns = simulate(refresh, replicas, options).makespan_ns;
    let mut epoch_makespans_ns = Vec::with_capacity(epochs);
    let mut refresh_epochs = Vec::new();
    for epoch in 0..epochs {
        if epoch % stale_period == 0 {
            refresh_epochs.push(epoch);
            epoch_makespans_ns.push(refresh_ns);
        } else {
            epoch_makespans_ns.push(steady_ns);
        }
    }
    TrainingTimeline {
        epoch_makespans_ns,
        refresh_epochs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{GcnWorkload, MappingKind, UpdateAccounting, WorkloadOptions};
    use gopim_graph::datasets::Dataset;
    use gopim_mapping::SelectivePolicy;

    fn build(accounting: UpdateAccounting) -> GcnWorkload {
        let options = WorkloadOptions {
            mapping: MappingKind::Interleaved,
            selective: Some(SelectivePolicy::with_theta(0.5, 20)),
            accounting,
            ..WorkloadOptions::default()
        };
        GcnWorkload::build(Dataset::Ddi, &options)
    }

    /// A write-paced configuration: compute terms zeroed out so the
    /// ReRAM write channel is the bottleneck and the refresh burst is
    /// visible in the makespan.
    fn build_write_paced(accounting: UpdateAccounting) -> GcnWorkload {
        let mut params = crate::latency::LatencyParams::paper();
        params.edge_stream_ns = 0.0;
        params.group_issue_ns = 0.0;
        params.microbatch_overhead_ns = 0.0;
        let options = WorkloadOptions {
            mapping: MappingKind::Interleaved,
            selective: Some(SelectivePolicy::with_theta(0.3, 20)),
            accounting,
            micro_batch: 256,
            params,
            ..WorkloadOptions::default()
        };
        GcnWorkload::build(Dataset::Ddi, &options)
    }

    #[test]
    fn refresh_epochs_are_slower_when_writes_pace() {
        let steady = build_write_paced(UpdateAccounting::SteadyEpoch);
        let refresh = build_write_paced(UpdateAccounting::RefreshEpoch);
        let r = vec![1; steady.stages().len()];
        let tl = simulate_training(&steady, &refresh, 20, 40, &r, &PipelineOptions::default());
        assert_eq!(tl.refresh_epochs, vec![0, 20]);
        let refresh_ns = tl.epoch_makespans_ns[0];
        let steady_ns = tl.epoch_makespans_ns[1];
        assert!(
            refresh_ns > steady_ns,
            "refresh {refresh_ns} vs steady {steady_ns}"
        );
    }

    #[test]
    fn isu_balancing_makes_refresh_bursts_cheap_in_steady_state() {
        // With interleaved mapping at the default micro-batch, even a
        // full refresh spreads to ~1 row per group per micro-batch, so
        // refresh and steady epochs cost nearly the same — the burst is
        // absorbed (the point of ISU's balance).
        let steady = build(UpdateAccounting::SteadyEpoch);
        let refresh = build(UpdateAccounting::RefreshEpoch);
        let r = vec![1; steady.stages().len()];
        let tl = simulate_training(&steady, &refresh, 20, 21, &r, &PipelineOptions::default());
        let ratio = tl.epoch_makespans_ns[0] / tl.epoch_makespans_ns[1];
        assert!(ratio < 1.05, "refresh/steady ratio {ratio}");
    }

    #[test]
    fn timeline_total_tracks_the_amortized_model() {
        let steady = build(UpdateAccounting::SteadyEpoch);
        let refresh = build(UpdateAccounting::RefreshEpoch);
        let amortized = build(UpdateAccounting::Amortized);
        let r = vec![1; steady.stages().len()];
        let opts = PipelineOptions::default();
        let tl = simulate_training(&steady, &refresh, 20, 20, &r, &opts);
        let amortized_total = simulate(&amortized, &r, &opts).makespan_ns * 20.0;
        let rel = (tl.total_ns() - amortized_total).abs() / amortized_total;
        // Writes are a modest share of epoch time, so the exact schedule
        // and the amortized average agree closely.
        assert!(
            rel < 0.1,
            "timeline {} vs amortized {}",
            tl.total_ns(),
            amortized_total
        );
    }

    #[test]
    fn epoch_zero_always_refreshes() {
        let steady = build(UpdateAccounting::SteadyEpoch);
        let refresh = build(UpdateAccounting::RefreshEpoch);
        let r = vec![1; steady.stages().len()];
        let tl = simulate_training(&steady, &refresh, 7, 3, &r, &PipelineOptions::default());
        assert_eq!(tl.refresh_epochs, vec![0]);
        assert_eq!(tl.epoch_makespans_ns.len(), 3);
    }
}
