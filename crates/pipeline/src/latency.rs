//! Analytic stage-latency model.
//!
//! The model charges (per micro-batch of `B` vertices):
//!
//! - **Combination / LossCalc** (weights mapped, dense input): `B`
//!   input vectors streamed through the mapped weight tiles —
//!   `B × t_mvm`. Row/column tiles operate in parallel.
//! - **Aggregation / GradCompute** (features mapped, adjacency input):
//!   `B` issues plus two irregularity terms that make aggregation the
//!   dominant stage (§I, §III-A of the paper): sequential scheduling of
//!   the crossbar row-groups a vertex's neighbors land on (shared
//!   S+A/adder-tree collection), and per-edge sparse-index streaming
//!   from the global buffer. These are the terms that produce the
//!   paper's observation that Aggregation runs *hundreds of times*
//!   longer than Combination and that crossbars mapped for Combination
//!   idle >97 % of the time (Fig. 4).
//! - **Feature updates** (writes) are computed by the workload builder
//!   from the mapping + selective-updating policy and are *not*
//!   replica-parallelizable.
//!
//! Every constant is either a published Table II number or a documented
//! parameter of [`LatencyParams`]; the same model is applied to GoPIM
//! and all baselines so only relative results matter.

use gopim_reram::spec::AcceleratorSpec;

/// Tunable parameters of the latency model.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyParams {
    /// Hardware spec (Table II).
    pub spec: AcceleratorSpec,
    /// Sequential issue cost per active row-group per aggregation input
    /// (adder-tree / bus collection of one group's partial sum), ns.
    pub group_issue_ns: f64,
    /// Per-edge sparse-index streaming cost (fetching and decoding a
    /// neighbor id and driving its wordline), ns.
    pub edge_stream_ns: f64,
    /// GradCompute works on errors with the same feature mapping but
    /// roughly half the arithmetic of Aggregation (no activation pass).
    pub gc_compute_factor: f64,
    /// Fixed per-micro-batch, per-stage scheduling overhead (controller
    /// dispatch, buffer switch), ns. Larger micro-batches amortize it —
    /// the effect behind the paper's Fig. 16(c).
    pub microbatch_overhead_ns: f64,
}

impl LatencyParams {
    /// Parameters matching the paper's Table II hardware.
    pub fn paper() -> Self {
        let spec = AcceleratorSpec::paper();
        LatencyParams {
            group_issue_ns: spec.read_latency_ns,
            edge_stream_ns: 2.0 * spec.read_latency_ns,
            gc_compute_factor: 0.5,
            microbatch_overhead_ns: 5_000.0,
            spec,
        }
    }

    /// Parameters with the aggregation collection cost *derived* from
    /// the mesh NoC model instead of the read-latency heuristic: the
    /// per-group issue cost becomes the reduction sink's serialization
    /// time (see [`gopim_reram::noc::MeshNoc::sink_service_ns`]).
    pub fn with_noc(noc: &gopim_reram::noc::MeshNoc) -> Self {
        LatencyParams {
            group_issue_ns: noc.sink_service_ns(),
            ..LatencyParams::paper()
        }
    }

    /// One full MVM issue latency (8 × 29.31 ns for the paper config).
    pub fn mvm_ns(&self) -> f64 {
        self.spec.mvm_latency_ns()
    }

    /// One crossbar-row programming latency (8 × 50.88 ns).
    pub fn row_write_ns(&self) -> f64 {
        self.spec.row_write_latency_ns()
    }

    /// Expected number of *distinct* crossbar row-groups touched by the
    /// neighbors of one vertex: `G · (1 − (1 − 1/G)^d)` for `G` groups
    /// and average degree `d` (balls-into-bins).
    pub fn expected_active_groups(&self, avg_degree: f64, groups: usize) -> f64 {
        if groups == 0 || avg_degree <= 0.0 {
            return 0.0;
        }
        let g = groups as f64;
        g * (1.0 - (1.0 - 1.0 / g).powf(avg_degree))
    }

    /// Combination / LossCalc compute time per micro-batch, ns.
    pub fn combination_compute_ns(&self, micro_batch: usize) -> f64 {
        micro_batch as f64 * self.mvm_ns()
    }

    /// Aggregation compute time per micro-batch, ns.
    ///
    /// `avg_degree`/`groups` describe the mapped feature matrix;
    /// `edges_per_microbatch` is the share of `2E` processed by one
    /// micro-batch.
    pub fn aggregation_compute_ns(
        &self,
        micro_batch: usize,
        avg_degree: f64,
        groups: usize,
        edges_per_microbatch: f64,
    ) -> f64 {
        let active = self.expected_active_groups(avg_degree, groups);
        micro_batch as f64 * (self.mvm_ns() + active * self.group_issue_ns)
            + edges_per_microbatch * self.edge_stream_ns
    }

    /// GradCompute compute time per micro-batch, ns: a scaled
    /// aggregation pass plus the SRAM weight-gradient element-wise work.
    pub fn grad_compute_ns(
        &self,
        micro_batch: usize,
        avg_degree: f64,
        groups: usize,
        edges_per_microbatch: f64,
        weight_elements: u64,
    ) -> f64 {
        self.gc_compute_factor
            * self.aggregation_compute_ns(micro_batch, avg_degree, groups, edges_per_microbatch)
            + gopim_reram::timing::sram_elementwise_ns(weight_elements)
    }
}

impl Default for LatencyParams {
    fn default() -> Self {
        LatencyParams::paper()
    }
}

impl gopim_cache::CanonicalHash for LatencyParams {
    fn canonical_hash(&self, h: &mut gopim_cache::CanonicalHasher) {
        h.write_tag("pipeline.latency_params/v1");
        self.spec.canonical_hash(h);
        h.write_f64(self.group_issue_ns);
        h.write_f64(self.edge_stream_ns);
        h.write_f64(self.gc_compute_factor);
        h.write_f64(self.microbatch_overhead_ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn active_groups_saturates_at_group_count() {
        let p = LatencyParams::paper();
        let a = p.expected_active_groups(10_000.0, 67);
        assert!(a > 66.9 && a <= 67.0);
    }

    #[test]
    fn active_groups_tracks_degree_when_groups_plentiful() {
        let p = LatencyParams::paper();
        let a = p.expected_active_groups(50.0, 40_000);
        assert!((a - 50.0).abs() < 0.1, "got {a}");
    }

    #[test]
    fn active_groups_degenerate_cases() {
        let p = LatencyParams::paper();
        assert_eq!(p.expected_active_groups(0.0, 10), 0.0);
        assert_eq!(p.expected_active_groups(5.0, 0), 0.0);
    }

    #[test]
    fn aggregation_dwarfs_combination_on_dense_graphs() {
        let p = LatencyParams::paper();
        let b = 64;
        let co = p.combination_compute_ns(b);
        // ddi-like: N = 4267 ⇒ 67 groups, degree 500, 2E/n_mb ≈ 39 850.
        let ag = p.aggregation_compute_ns(b, 500.5, 67, 39_850.0);
        assert!(ag > 40.0 * co, "AG {ag} vs CO {co}");
    }

    #[test]
    fn combination_is_linear_in_batch() {
        let p = LatencyParams::paper();
        assert!((p.combination_compute_ns(128) - 2.0 * p.combination_compute_ns(64)).abs() < 1e-9);
    }

    #[test]
    fn noc_derived_params_stay_in_calibration_range() {
        use gopim_reram::noc::MeshNoc;
        let noc = MeshNoc::paper(&AcceleratorSpec::paper());
        let derived = LatencyParams::with_noc(&noc);
        let heuristic = LatencyParams::paper();
        // The NoC-derived collection cost lands within 10× of the
        // read-latency heuristic — the calibration is not arbitrary.
        let ratio = derived.group_issue_ns / heuristic.group_issue_ns;
        assert!(ratio > 0.05 && ratio < 10.0, "ratio {ratio}");
    }

    #[test]
    fn grad_compute_scales_from_aggregation() {
        let p = LatencyParams::paper();
        let ag = p.aggregation_compute_ns(64, 100.0, 100, 1000.0);
        let gc = p.grad_compute_ns(64, 100.0, 100, 1000.0, 0);
        assert!((gc - 0.5 * ag).abs() < 1e-9);
    }
}
