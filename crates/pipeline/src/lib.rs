//! GCN training pipeline model for ReRAM PIM accelerators.
//!
//! This crate implements the paper's execution model (§III–§V):
//!
//! - An `L`-layer GCN trains in `4L` stages per batch —
//!   `CO1 → AG1 → … → COL → AGL → LCL → GCL → … → LC1 → GC1`
//!   (Fig. 2) — each mapped onto its own crossbar group ([`stage`]).
//! - Per-stage, per-micro-batch service times come from the analytic
//!   latency model ([`latency`]), split into a *compute* part that
//!   replicas parallelize and a *write* part (ReRAM programming) that
//!   they do not.
//! - A workload builder ([`workload`]) assembles the stage specs for a
//!   dataset/model pair under a chosen mapping strategy and selective
//!   updating policy.
//! - A schedule simulator ([`schedule`]) evaluates the pipeline
//!   recurrences (the paper's Eqs. 3–6) for any per-stage replica
//!   assignment, yielding makespan, per-stage busy/idle fractions
//!   (Fig. 4 / Fig. 15) and the op counts the energy model consumes
//!   ([`energy`]).
//!
//! # Example
//!
//! ```
//! use gopim_graph::datasets::Dataset;
//! use gopim_pipeline::workload::{GcnWorkload, WorkloadOptions};
//! use gopim_pipeline::schedule::{simulate, PipelineOptions};
//!
//! let wl = GcnWorkload::build(Dataset::Ddi, &WorkloadOptions::default());
//! assert_eq!(wl.stages().len(), 8); // 2-layer GCN ⇒ 8 stages
//!
//! let serial = simulate(&wl, &vec![1; 8], &PipelineOptions::serial());
//! let piped = simulate(&wl, &vec![1; 8], &PipelineOptions::default());
//! assert!(piped.makespan_ns < serial.makespan_ns);
//! ```

#![warn(missing_docs)]

pub mod des;
pub mod energy;
pub mod epochs;
pub mod latency;
pub mod queue;
pub mod schedule;
pub mod stage;
pub mod trace;
pub mod workload;

pub use schedule::{
    simulate, simulate_traced, PipelineOptions, PipelineResult, StageActivity, TraceEvent,
};
pub use stage::{StageKind, StageSpec};
pub use workload::{GcnWorkload, MappingKind, WorkloadOptions};
