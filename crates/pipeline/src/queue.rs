//! Pending-event queues for the discrete-event engine.
//!
//! The DES inner loop is dominated by priority-queue traffic: every
//! (stage, micro-batch) step pops the earliest-free server from a pool
//! and pushes its next free time back. [`EventQueue`] abstracts that
//! queue so two implementations stay compiled and cross-checkable:
//!
//! - [`HeapQueue`] — the reference: a `BinaryHeap` min-heap with an
//!   explicit insertion sequence number, so equal-timestamp events
//!   drain strictly FIFO.
//! - [`CalendarQueue`] — the fast path: a calendar/bucket queue
//!   (Brown, CACM 1988) with a monotone fast lane. DES server pools
//!   only ever push times at or after their newest pending event —
//!   per-stage service times are constant and the write channel only
//!   advances — so the pool is a sorted ring buffer by construction
//!   and both ends are O(1) with no compares. Out-of-order streams
//!   spill into the calendar proper, whose bucket width starts at the
//!   ReRAM read quantum (29.31 ns; see
//!   [`crate::latency::LatencyParams`]) and self-tunes to the
//!   observed event spacing.
//!
//! **Equivalence contract.** Both queues drain in globally ascending
//! `(time, insertion order)` — total order by `f64::total_cmp`, ties
//! strictly FIFO. `tests/kernel_equivalence.rs` and the pipeline
//! property tests pin that the two produce bit-identical drain orders
//! on random streams, and that whole DES runs are bit-identical under
//! either queue.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

use gopim_obs::metrics::LazyCounter;

static QUEUE_PUSHES: LazyCounter = LazyCounter::new("pipeline.queue.pushes");
static QUEUE_LAP_JUMPS: LazyCounter = LazyCounter::new("pipeline.queue.lap_jumps");
static QUEUE_RESIZES: LazyCounter = LazyCounter::new("pipeline.queue.resizes");
static QUEUE_RETUNES: LazyCounter = LazyCounter::new("pipeline.queue.retunes");
static QUEUE_SPILLS: LazyCounter = LazyCounter::new("pipeline.queue.spills");

/// A pending-event set ordered by `(time, insertion order)`.
///
/// `pop` returns events in ascending time; events pushed with equal
/// times drain in push order (FIFO). Time comparisons use
/// [`f64::total_cmp`], so any payload of finite times behaves
/// identically across implementations.
pub trait EventQueue<T> {
    /// Enqueues `item` at time `t`.
    fn push(&mut self, t: f64, item: T);

    /// Removes and returns the earliest event, FIFO among ties.
    fn pop(&mut self) -> Option<(f64, T)>;

    /// Number of pending events.
    fn len(&self) -> usize;

    /// Whether no events are pending.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Heap entry ordered descending so `BinaryHeap` (a max-heap) pops the
/// minimum `(t, seq)` first.
#[derive(Debug)]
struct HeapEntry<T> {
    t: f64,
    seq: u64,
    item: T,
}

impl<T> PartialEq for HeapEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl<T> Eq for HeapEntry<T> {}

impl<T> PartialOrd for HeapEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for HeapEntry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: smallest (t, seq) is the heap maximum.
        other
            .t
            .total_cmp(&self.t)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The reference event queue: a binary min-heap with FIFO tie-break.
#[derive(Debug, Default)]
pub struct HeapQueue<T> {
    heap: BinaryHeap<HeapEntry<T>>,
    seq: u64,
}

impl<T> HeapQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        HeapQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }
}

impl<T> EventQueue<T> for HeapQueue<T> {
    // `#[inline]`: the DES engine is generic over the queue, and these
    // one-liners must disappear into its monomorphized event loop —
    // benchmarking showed the un-inlined trait surface alone costing
    // ~5-10% at small pool sizes (BENCH_pr6's R=8 caveat).
    #[inline]
    fn push(&mut self, t: f64, item: T) {
        QUEUE_PUSHES.add(1);
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(HeapEntry { t, seq, item });
    }

    #[inline]
    fn pop(&mut self) -> Option<(f64, T)> {
        self.heap.pop().map(|e| (e.t, e.item))
    }

    #[inline]
    fn len(&self) -> usize {
        self.heap.len()
    }
}

/// Initial bucket count (power of two, for mask indexing).
const INITIAL_BUCKETS: usize = 16;

/// Grow (double) the calendar when events-per-bucket exceeds this.
/// Dense buckets are cheap — the monotone-push fast path appends in
/// O(1) and pops take the front in O(1) — while more buckets spread
/// the working set across more cache lines, so the calendar prefers
/// few, crowded buckets over many sparse ones.
const MAX_LOAD: usize = 16;

/// Default bucket width, ns: the ReRAM read quantum. Every latency in
/// the paper configuration is a sum of 29.31 ns reads and 50.88 ns row
/// writes, so a 29.31 ns day is the natural *starting* grid. The queue
/// then retunes its width to the observed event spacing (see
/// [`CalendarQueue`]): server pools in a deep pipeline advance by many
/// quanta per pop, and a width stuck at one quantum would make every
/// pop a fruitless lap.
pub const DEFAULT_BUCKET_WIDTH_NS: f64 = 29.31;

/// Consecutive lap-jumps between retunes before the width adapts.
const RETUNE_LAPS: u32 = 2;

#[derive(Debug, Clone)]
struct CalEntry<T> {
    day: u64,
    t: f64,
    seq: u64,
    item: T,
}

/// A calendar (bucket) event queue with a monotone fast lane.
///
/// While every push lands at or after the newest pending time, events
/// sit in a plain ring buffer that is sorted by construction — the
/// minimum is the front, and push/pop are O(1) with no compares. The
/// DES's server pools stay in this lane for entire runs: a stage's
/// completion times are provably non-decreasing (per-stage service is
/// constant, the write channel only advances, and a pool's minimum
/// free time never decreases), so the simulator never pays for
/// ordering it gets for free.
///
/// The first out-of-order push spills the lane into the calendar
/// proper: events are filed under their *day* — `floor(t / width)` —
/// and days map to buckets modulo the bucket count, like dates on a
/// wall calendar. Popping scans forward from the current day; a full
/// lap with no hit (all events far in the future) jumps directly to
/// the earliest pending event instead of walking empty days one by
/// one.
///
/// The bucket width is self-tuning: the spill sets it from the mean
/// spacing of the spilled events, and whenever [`RETUNE_LAPS`]
/// consecutive pops needed the lap-jump — the signature of a width
/// much smaller than the real event spacing — the queue resets its
/// width to twice the average gap between the pops since the last
/// retune and refiles. Retuning only moves entries between buckets;
/// the drain order is `(t, seq)` in every mode and at any width, so
/// all of this is a pure throughput knob. The tuning signal is the
/// deterministic push/pop sequence itself, never wall-clock time.
///
/// # Example
///
/// ```
/// use gopim_pipeline::queue::{CalendarQueue, EventQueue};
///
/// let mut q = CalendarQueue::new();
/// q.push(58.62, "b");
/// q.push(29.31, "a");
/// q.push(29.31, "tie");
/// assert_eq!(q.pop(), Some((29.31, "a")));
/// assert_eq!(q.pop(), Some((29.31, "tie"))); // FIFO among ties
/// assert_eq!(q.pop(), Some((58.62, "b")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct CalendarQueue<T> {
    /// The monotone fast lane: while every push lands at or after the
    /// newest pending time, the queue is a plain ring buffer — sorted
    /// by construction, so the minimum is the front and both ends are
    /// O(1) with no compares. The DES's server pools provably stay in
    /// this lane for whole runs (see the type docs). Entries carry no
    /// sequence number — ring order *is* FIFO order, and a spill
    /// renumbers them order-preservingly — so a lane entry is exactly
    /// as wide as its payload plus a time. At most one of `fifo` and
    /// `buckets` is non-empty at any time.
    fifo: VecDeque<(f64, T)>,
    /// The calendar proper, engaged when an out-of-order push spills
    /// the fast lane; empty — not even allocated — until then, so
    /// constructing a queue and running it in lane mode never touches
    /// the allocator for bucket bookkeeping. Buckets hold their
    /// entries *unordered*: a push is a plain append, and a pop
    /// linearly scans one small contiguous bucket for the day's
    /// minimum.
    buckets: Vec<Vec<CalEntry<T>>>,
    /// Entries in `buckets` (the trait's `len` adds the lane's). Kept
    /// separate so the lane fast path is one load and one branch.
    cal_len: usize,
    width: f64,
    /// `1.0 / width`, cached so `day_of` multiplies instead of
    /// dividing on every push.
    inv_width: f64,
    cur_day: u64,
    /// Next calendar sequence number. Lane pushes never draw one —
    /// ring order is FIFO order — so this only advances in calendar
    /// mode and in the spill's order-preserving renumbering.
    seq: u64,
    /// Lap-jumps taken since the width was last retuned.
    laps_since_tune: u32,
    /// Pops completed since the width was last retuned.
    pops_since_tune: u64,
    /// Time of the pop that anchored the last retune window.
    tune_anchor_t: f64,
    /// Pushes accepted over this queue's lifetime, flushed to the
    /// `pipeline.queue.pushes` counter in one batch on drop — a plain
    /// integer bump keeps the per-push atomic load off the fast lane.
    pushes: PushTally,
}

/// A push count that flushes on drop and resets on clone, so cloned
/// queues never double-report their ancestor's pushes.
#[derive(Debug, Default)]
struct PushTally(u64);

impl Clone for PushTally {
    fn clone(&self) -> Self {
        PushTally(0)
    }
}

impl<T> Drop for CalendarQueue<T> {
    fn drop(&mut self) {
        QUEUE_PUSHES.add(self.pushes.0);
    }
}

impl<T> Default for CalendarQueue<T> {
    fn default() -> Self {
        CalendarQueue::new()
    }
}

impl<T> CalendarQueue<T> {
    /// An empty calendar on the ReRAM-quantum bucket width
    /// ([`DEFAULT_BUCKET_WIDTH_NS`]).
    pub fn new() -> Self {
        CalendarQueue::with_width(DEFAULT_BUCKET_WIDTH_NS)
    }

    /// An empty calendar with an explicit bucket width (ns).
    ///
    /// # Panics
    ///
    /// Panics unless `width` is finite and positive.
    pub fn with_width(width: f64) -> Self {
        assert!(
            width.is_finite() && width > 0.0,
            "bucket width must be finite and positive"
        );
        CalendarQueue {
            fifo: VecDeque::new(),
            buckets: Vec::new(),
            cal_len: 0,
            width,
            inv_width: width.recip(),
            cur_day: 0,
            seq: 0,
            laps_since_tune: 0,
            pops_since_tune: 0,
            tune_anchor_t: 0.0,
            pushes: PushTally(0),
        }
    }

    fn day_of(&self, t: f64) -> u64 {
        debug_assert!(!t.is_nan(), "event times must not be NaN");
        let d = (t * self.inv_width).floor();
        if d <= 0.0 {
            0
        } else {
            d as u64
        }
    }

    fn bucket_of(&self, day: u64) -> usize {
        // Bucket counts are powers of two, so modulo is a mask.
        (day as usize) & (self.buckets.len() - 1)
    }

    /// Index of the bucket's minimum `(t, seq)` entry among those
    /// filed under exactly `day`, scanning the whole (small) bucket.
    fn day_min(bucket: &[CalEntry<T>], day: u64) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (i, e) in bucket.iter().enumerate() {
            if e.day != day {
                continue;
            }
            best = match best {
                Some(b)
                    if bucket[b]
                        .t
                        .total_cmp(&e.t)
                        .then_with(|| bucket[b].seq.cmp(&e.seq))
                        .is_lt() =>
                {
                    Some(b)
                }
                _ => Some(i),
            };
        }
        best
    }

    /// Location `(bucket, index)` of the globally minimum `(t, seq)`
    /// entry — the far-future jump target after a fruitless lap.
    fn global_min(&self) -> Option<(usize, usize)> {
        let mut best: Option<(usize, usize)> = None;
        for (bi, bucket) in self.buckets.iter().enumerate() {
            for (i, e) in bucket.iter().enumerate() {
                best = match best {
                    Some((pb, pi))
                        if self.buckets[pb][pi]
                            .t
                            .total_cmp(&e.t)
                            .then_with(|| self.buckets[pb][pi].seq.cmp(&e.seq))
                            .is_lt() =>
                    {
                        Some((pb, pi))
                    }
                    _ => Some((bi, i)),
                };
            }
        }
        best
    }

    /// Spills the monotone fast lane into the calendar buckets after
    /// an out-of-order push. The lane is already sorted, so its span
    /// is `back - front`; the bucket width retunes to twice the mean
    /// spacing of the spilled entries before they are filed. Lane
    /// entries carry no sequence numbers, so the spill renumbers them
    /// in ring order — FIFO order by construction — keeping every
    /// assigned number below the numbers future pushes will draw.
    fn spill_fifo(&mut self) {
        QUEUE_SPILLS.add(1);
        let spilled = self.fifo.len();
        if let (Some(front), Some(back)) = (self.fifo.front(), self.fifo.back()) {
            if spilled >= 2 {
                let span = back.0 - front.0;
                let new_width = 2.0 * span / spilled as f64;
                if new_width.is_finite() && new_width > 0.0 {
                    self.width = new_width;
                    self.inv_width = new_width.recip();
                }
            }
        }
        let mut target = self.buckets.len().max(INITIAL_BUCKETS);
        while spilled >= MAX_LOAD * target {
            target *= 2;
        }
        if target != self.buckets.len() {
            self.buckets.resize_with(target, Vec::new);
        }
        // Ring order is FIFO order, so renumbering front-to-back from
        // the current counter preserves tie-breaks; the triggering
        // push draws its number after the spill, keeping it younger
        // than everything spilled.
        let mut first_day = None;
        while let Some((t, item)) = self.fifo.pop_front() {
            let day = self.day_of(t);
            if first_day.is_none() {
                first_day = Some(day);
            }
            let seq = self.seq;
            self.seq += 1;
            let idx = self.bucket_of(day);
            self.buckets[idx].push(CalEntry { day, t, seq, item });
            self.cal_len += 1;
        }
        if let Some(day) = first_day {
            self.cur_day = day;
        }
    }

    /// Rebuilds the calendar with `new_buckets` buckets and `new_width`
    /// days, refiling every entry under its recomputed day and
    /// repositioning the cursor at the earliest pending day. The
    /// drained buckets keep their buffers, so retiling allocates
    /// nothing unless the calendar is actually growing.
    fn retile(&mut self, new_buckets: usize, new_width: f64) {
        self.width = new_width;
        self.inv_width = new_width.recip();
        let mut entries: Vec<CalEntry<T>> = Vec::with_capacity(self.cal_len);
        for bucket in self.buckets.iter_mut() {
            entries.append(bucket);
        }
        if new_buckets != self.buckets.len() {
            self.buckets.resize_with(new_buckets, Vec::new);
        }
        let mut earliest: Option<(f64, u64, u64)> = None;
        for mut entry in entries {
            entry.day = self.day_of(entry.t);
            let replace = match earliest {
                Some((bt, bseq, _)) => entry
                    .t
                    .total_cmp(&bt)
                    .then_with(|| entry.seq.cmp(&bseq))
                    .is_lt(),
                None => true,
            };
            if replace {
                earliest = Some((entry.t, entry.seq, entry.day));
            }
            let idx = self.bucket_of(entry.day);
            self.buckets[idx].push(entry);
        }
        if let Some((_, _, day)) = earliest {
            self.cur_day = day;
        }
    }

    /// Doubles the bucket count and refiles every entry.
    fn grow(&mut self) {
        QUEUE_RESIZES.add(1);
        self.retile(self.buckets.len() * 2, self.width);
    }

    /// Widens the calendar day to track the observed event spacing.
    ///
    /// Called after a pop at time `t` that needed the lap-jump. Once
    /// [`RETUNE_LAPS`] jumps accumulate, the width resets to twice the
    /// mean pop-to-pop gap over the window since the last retune — the
    /// spacing the queue is actually draining at — so subsequent pops
    /// land within a day or two of the cursor instead of lapping.
    fn maybe_retune(&mut self, t: f64) {
        if self.laps_since_tune < RETUNE_LAPS {
            return;
        }
        let gap = (t - self.tune_anchor_t) / self.pops_since_tune as f64;
        let new_width = 2.0 * gap;
        if new_width.is_finite() && new_width > 0.0 && self.cal_len > 0 {
            QUEUE_RETUNES.add(1);
            self.retile(self.buckets.len(), new_width);
        }
        self.tune_anchor_t = t;
        self.laps_since_tune = 0;
        self.pops_since_tune = 0;
    }
}

impl<T> CalendarQueue<T> {
    /// The calendar-mode side of `push`: spill the lane if it is still
    /// holding (the push was out of order), then file into a bucket.
    /// Outlined and cold so the lane fast path stays small enough to
    /// inline into the DES event loop.
    #[cold]
    #[inline(never)]
    fn push_calendar(&mut self, t: f64, item: T) {
        if self.cal_len == 0 {
            self.spill_fifo();
        }
        if self.cal_len >= MAX_LOAD * self.buckets.len() {
            self.grow();
        }
        let seq = self.seq;
        self.seq += 1;
        let day = self.day_of(t);
        // A push into the past rewinds the cursor so no event is
        // skipped (the DES never does this, but the queue is total).
        if day < self.cur_day {
            self.cur_day = day;
        }
        let idx = self.bucket_of(day);
        self.buckets[idx].push(CalEntry { day, t, seq, item });
        self.cal_len += 1;
    }

    /// The calendar-mode side of `pop` (outlined and cold, like
    /// [`CalendarQueue::push_calendar`]). Only called with
    /// `cal_len > 0`.
    #[cold]
    #[inline(never)]
    fn pop_calendar(&mut self) -> Option<(f64, T)> {
        // Walk forward day by day; a day's candidates all live in one
        // bucket, which can also hold other "laps" (day + k·buckets)
        // that the per-entry `day` check skips.
        for step in 0..self.buckets.len() {
            let day = self.cur_day + step as u64;
            let idx = self.bucket_of(day);
            if let Some(i) = Self::day_min(&self.buckets[idx], day) {
                self.cur_day = day;
                self.cal_len -= 1;
                self.pops_since_tune += 1;
                let e = self.buckets[idx].swap_remove(i);
                return Some((e.t, e.item));
            }
        }
        // Full lap without a hit: everything pending is at least one
        // calendar year ahead. Jump straight to the earliest event.
        QUEUE_LAP_JUMPS.add(1);
        // lint:allow(no-panic-in-lib): cal_len > 0 was checked by the caller, so some bucket is non-empty
        let (bi, i) = self.global_min().expect("pending events exist");
        let e = self.buckets[bi].swap_remove(i);
        self.cur_day = e.day;
        self.cal_len -= 1;
        self.pops_since_tune += 1;
        self.laps_since_tune += 1;
        self.maybe_retune(e.t);
        Some((e.t, e.item))
    }
}

impl<T> EventQueue<T> for CalendarQueue<T> {
    #[inline]
    fn push(&mut self, t: f64, item: T) {
        self.pushes.0 += 1;
        if self.cal_len == 0 {
            // Fast lane: pushes at or after the newest pending time
            // keep the ring buffer sorted by construction (ties are
            // FIFO because ring order is push order).
            match self.fifo.back() {
                Some(back) if back.0.total_cmp(&t).is_gt() => {}
                _ => {
                    self.fifo.push_back((t, item));
                    return;
                }
            }
        }
        self.push_calendar(t, item);
    }

    #[inline]
    fn pop(&mut self) -> Option<(f64, T)> {
        // Fast lane: the ring buffer is sorted, so its front is the
        // minimum. The lane and the calendar are never both occupied.
        if let Some((t, item)) = self.fifo.pop_front() {
            return Some((t, item));
        }
        if self.cal_len == 0 {
            return None;
        }
        self.pop_calendar()
    }

    #[inline]
    fn len(&self) -> usize {
        self.cal_len + self.fifo.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain<T, Q: EventQueue<T>>(q: &mut Q) -> Vec<(f64, T)> {
        let mut out = Vec::new();
        while let Some(ev) = q.pop() {
            out.push(ev);
        }
        out
    }

    #[test]
    fn both_queues_drain_ascending_with_fifo_ties() {
        let events = [(50.88, 0usize), (29.31, 1), (29.31, 2), (0.0, 3)];
        let mut heap = HeapQueue::new();
        let mut cal = CalendarQueue::new();
        for &(t, id) in &events {
            heap.push(t, id);
            cal.push(t, id);
        }
        let expect = vec![(0.0, 3), (29.31, 1), (29.31, 2), (50.88, 0)];
        assert_eq!(drain(&mut heap), expect);
        assert_eq!(drain(&mut cal), expect);
    }

    #[test]
    fn interleaved_push_pop_matches_heap() {
        let mut heap = HeapQueue::new();
        let mut cal = CalendarQueue::new();
        // Deterministic pseudo-random stream of operations.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for i in 0..2000u64 {
            let r = next();
            if r % 3 == 0 {
                assert_eq!(heap.pop(), cal.pop(), "pop {i} diverged");
            } else {
                // Quantized times with frequent ties.
                let t = (r % 97) as f64 * 29.31;
                heap.push(t, i);
                cal.push(t, i);
            }
            assert_eq!(heap.len(), cal.len());
        }
        assert_eq!(drain(&mut heap), drain(&mut cal));
    }

    #[test]
    fn far_future_events_take_the_lap_jump() {
        let mut cal = CalendarQueue::with_width(1.0);
        cal.push(1.0e9, "next year");
        cal.push(2.0e9, "year after");
        assert_eq!(cal.pop(), Some((1.0e9, "next year")));
        assert_eq!(cal.pop(), Some((2.0e9, "year after")));
        assert_eq!(cal.pop(), None);
    }

    #[test]
    fn growth_preserves_order() {
        let mut cal = CalendarQueue::with_width(1.0);
        let n = 10 * INITIAL_BUCKETS * MAX_LOAD;
        for i in (0..n).rev() {
            cal.push(i as f64, i);
        }
        assert!(cal.buckets.len() > INITIAL_BUCKETS, "calendar grew");
        let drained = drain(&mut cal);
        assert_eq!(drained.len(), n);
        assert!(drained.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn pushes_into_the_past_rewind_the_cursor() {
        let mut cal = CalendarQueue::with_width(1.0);
        cal.push(100.0, "late");
        assert_eq!(cal.pop(), Some((100.0, "late")));
        cal.push(5.0, "early");
        assert_eq!(cal.pop(), Some((5.0, "early")));
    }

    #[test]
    fn out_of_order_push_spills_the_fast_lane_into_the_calendar() {
        // A strictly monotone stream rides the ring-buffer lane; the
        // first out-of-order push must spill every pending event into
        // the calendar without disturbing the drain order.
        let mut cal = CalendarQueue::with_width(1.0);
        let mut heap = HeapQueue::new();
        for i in 0..50u64 {
            let t = i as f64 * 100.0;
            cal.push(t, i);
            heap.push(t, i);
        }
        assert_eq!(cal.fifo.len(), 50, "monotone stream stays in the lane");
        cal.push(1.5, 50);
        heap.push(1.5, 50);
        assert!(cal.fifo.is_empty(), "out-of-order push spills the lane");
        assert_eq!(drain(&mut cal), drain(&mut heap));
    }

    #[test]
    fn repeated_lap_jumps_retune_the_width_to_the_event_spacing() {
        // Spill into calendar mode first (one out-of-order push), then
        // drain events spaced 1000× the day width: the untuned
        // calendar must lap-jump, and after RETUNE_LAPS jumps the
        // width snaps to the observed gap.
        let mut cal = CalendarQueue::with_width(1.0);
        let mut heap = HeapQueue::new();
        cal.push(500.0, 999);
        heap.push(500.0, 999);
        for i in 0..200u64 {
            let t = i as f64 * 1000.0;
            cal.push(t, i);
            heap.push(t, i);
        }
        assert!(cal.fifo.is_empty(), "calendar mode engaged");
        for _ in 0..8 {
            assert_eq!(cal.pop(), heap.pop());
        }
        assert!(
            cal.width > 1.0,
            "width should have retuned upward, still {}",
            cal.width
        );
        // The retuned calendar keeps draining exactly like the heap,
        // including fresh pushes filed under the new width.
        for i in 200..260u64 {
            let t = i as f64 * 1000.0;
            cal.push(t, i);
            heap.push(t, i);
        }
        assert_eq!(drain(&mut cal), drain(&mut heap));
    }

    #[test]
    fn negative_and_zero_times_file_on_day_zero() {
        let mut cal = CalendarQueue::new();
        cal.push(0.0, "zero");
        cal.push(-1.0, "negative");
        assert_eq!(cal.pop(), Some((-1.0, "negative")));
        assert_eq!(cal.pop(), Some((0.0, "zero")));
    }
}
