//! Discrete-event cross-check of the analytic schedule model.
//!
//! [`schedule::simulate`](crate::schedule::simulate) evaluates the
//! pipeline with a token-bucket recurrence (inter-departure
//! `compute / R`). This module simulates the same system with an
//! event-driven engine in which every replica is an explicit server —
//! an independent implementation with different idealizations, used to
//! bound the analytic model's optimism:
//!
//! - [`ReplicaModel::DiscreteServers`]: each replica serves one whole
//!   micro-batch (`compute_ns` service); replicas are a `c = R` server
//!   pool. This is the paper's literal intra-batch parallelism ("multiple
//!   micro-batches … run in parallel").
//! - [`ReplicaModel::InputSplit`]: `min(R, B)` replicas gang up on one
//!   micro-batch (service `compute / min(R, B)`), with
//!   `⌈R / min(R, B)⌉` gangs — the analytic model's assumption.
//!
//! With `R = 1` both collapse to the same recurrence and must agree
//! with the analytic simulator exactly; the tests verify this, and the
//! property tests bound the divergence elsewhere.
//!
//! The per-stage server pools run on a pluggable [`EventQueue`]: the
//! default is the [`CalendarQueue`] keyed to the ReRAM timing grid,
//! and [`simulate_des_with_queue`] runs the identical engine on any
//! other implementation (the differential tests cross-check it against
//! [`crate::queue::HeapQueue`] bit for bit).

use crate::queue::{CalendarQueue, EventQueue};
use crate::workload::GcnWorkload;
use gopim_obs::metrics::LazyCounter;

static DES_RUNS: LazyCounter = LazyCounter::new("pipeline.des.runs");
static DES_EVENTS: LazyCounter = LazyCounter::new("pipeline.des.events");
static FAULTS_INJECTED: LazyCounter = LazyCounter::new("faults.injected");
static FAULTS_REMAPPED: LazyCounter = LazyCounter::new("faults.remapped");
static FAULTS_RETRIES: LazyCounter = LazyCounter::new("faults.retries");

/// How replicas serve micro-batches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicaModel {
    /// One replica serves one whole micro-batch.
    DiscreteServers,
    /// Up to `B` replicas split a micro-batch's inputs.
    InputSplit,
}

/// Result of a discrete-event run.
#[derive(Debug, Clone, PartialEq)]
pub struct DesResult {
    /// End-to-end makespan, ns.
    pub makespan_ns: f64,
    /// Completion time of every (stage, micro-batch), ns.
    pub completions_ns: Vec<Vec<f64>>,
}

/// The shared event-driven engine: per-stage server pools on any
/// [`EventQueue`], with the per-write latency supplied by `write`
/// (identity for clean runs, the fault session filter for faulty
/// ones). All arithmetic is queue-independent, so two queues that
/// drain in the same order produce bit-identical results.
fn des_core<Q: EventQueue<()>>(
    workload: &GcnWorkload,
    replicas: &[usize],
    model: ReplicaModel,
    mut make_queue: impl FnMut() -> Q,
    mut write: impl FnMut(usize, usize, f64, f64) -> f64,
) -> DesResult {
    let stages = workload.stages();
    assert_eq!(replicas.len(), stages.len(), "one replica count per stage");
    assert!(replicas.iter().all(|&r| r > 0), "replicas must be positive");
    let n_mb = workload.num_microbatches();
    let s = stages.len();
    let _span = gopim_obs::span!("pipeline.des", s, n_mb);
    DES_RUNS.add(1);
    DES_EVENTS.add((s * n_mb) as u64);
    let b = workload.micro_batch();
    let overhead = workload.overhead_ns();

    // Per-stage server pools (event queues of free times) and write
    // channel availability.
    let mut servers: Vec<Q> = (0..s)
        .map(|i| {
            let (count, _) = server_shape(replicas[i], b, model);
            let mut q = make_queue();
            for _ in 0..count {
                q.push(0.0, ());
            }
            q
        })
        .collect();
    let mut w_chan = vec![0.0f64; s];
    let mut completions = vec![vec![0.0f64; n_mb]; s];
    let mut makespan = 0.0f64;

    // Per-stage service times, hoisted out of the event loop: the
    // split factor and the division are loop-invariant in `j`, and the
    // hoisted value is the identical f64 expression, so results stay
    // bit-identical while the inner loop drops a divide per event.
    let service_ns: Vec<f64> = (0..s)
        .map(|i| {
            let (_, split) = server_shape(replicas[i], b, model);
            stages[i].compute_ns / split as f64
        })
        .collect();

    #[allow(clippy::needless_range_loop)] // j indexes per-stage completion tables
    for j in 0..n_mb {
        let mut prev_end = 0.0f64;
        for i in 0..s {
            let service = service_ns[i];
            let d_start = prev_end.max(w_chan[i]);
            let w = write(i, j, d_start, workload.write_ns(i, j));
            let w_end = d_start + overhead + w;
            w_chan[i] = w_end;
            // Earliest-free server.
            // lint:allow(no-panic-in-lib): pool holds replicas[i] >= 1 servers and every pop is paired with a push below
            let (free, ()) = servers[i].pop().expect("non-empty pool");
            let c_start = w_end.max(free);
            let c_end = c_start + service;
            servers[i].push(c_end, ());
            completions[i][j] = c_end;
            prev_end = c_end;
        }
        makespan = makespan.max(prev_end);
    }
    DesResult {
        makespan_ns: makespan,
        completions_ns: completions,
    }
}

/// Runs the event-driven simulation (single batch, intra-batch
/// pipelining) on the default [`CalendarQueue`].
///
/// # Panics
///
/// Panics if `replicas.len() != workload.stages().len()` or any count
/// is zero.
pub fn simulate_des(workload: &GcnWorkload, replicas: &[usize], model: ReplicaModel) -> DesResult {
    simulate_des_with_queue(workload, replicas, model, CalendarQueue::new)
}

/// [`simulate_des`] on a caller-chosen [`EventQueue`] (`make_queue`
/// builds one empty queue per stage). The differential tests use this
/// to pin calendar-vs-heap bit equivalence.
///
/// # Panics
///
/// Panics if `replicas.len() != workload.stages().len()` or any count
/// is zero.
pub fn simulate_des_with_queue<Q: EventQueue<()>>(
    workload: &GcnWorkload,
    replicas: &[usize],
    model: ReplicaModel,
    make_queue: impl FnMut() -> Q,
) -> DesResult {
    des_core(workload, replicas, model, make_queue, |_, _, _, w| w)
}

/// Runs the event-driven simulation through a fault session: each
/// write's latency is filtered by
/// [`FaultSession::write`](gopim_faults::FaultSession::write) at its
/// dispatch time, so due fault events fire in simulated-time order and
/// mitigation (retries with capped backoff, spare remapping, load
/// concentration) stretches exactly the writes it should. The
/// session's [stats](gopim_faults::FaultSession::stats) accumulate the
/// retry/remap work for energy accounting, and the `faults.injected` /
/// `faults.remapped` / `faults.retries` telemetry counters advance by
/// this run's contribution.
///
/// Over an inert session this is *bit-identical* to [`simulate_des`]
/// (the differential tests pin that), so the fault layer costs nothing
/// when disabled.
///
/// # Panics
///
/// Panics if `replicas.len() != workload.stages().len()` or any count
/// is zero.
pub fn simulate_des_faulty(
    workload: &GcnWorkload,
    replicas: &[usize],
    model: ReplicaModel,
    session: &mut gopim_faults::FaultSession,
) -> DesResult {
    let stats_before = *session.stats();
    let result = des_core(
        workload,
        replicas,
        model,
        CalendarQueue::new,
        |i, j, d_start, w| session.write(i, j, d_start, w),
    );
    let stats = session.stats();
    FAULTS_INJECTED.add(stats.injected - stats_before.injected);
    FAULTS_REMAPPED.add(stats.remapped - stats_before.remapped);
    FAULTS_RETRIES.add(stats.retries - stats_before.retries);
    result
}

/// `(server count, split factor)` for a replica count under a model.
#[inline]
fn server_shape(replicas: usize, micro_batch: usize, model: ReplicaModel) -> (usize, usize) {
    match model {
        ReplicaModel::DiscreteServers => (replicas, 1),
        ReplicaModel::InputSplit => {
            let split = replicas.min(micro_batch);
            ((replicas / split).max(1), split)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{simulate, PipelineOptions};
    use crate::workload::{GcnWorkload, WorkloadOptions};
    use gopim_graph::datasets::Dataset;

    fn ddi() -> GcnWorkload {
        GcnWorkload::build(Dataset::Ddi, &WorkloadOptions::default())
    }

    #[test]
    fn agrees_with_analytic_model_at_one_replica() {
        let wl = ddi();
        let r = vec![1; wl.stages().len()];
        let analytic = simulate(&wl, &r, &PipelineOptions::intra_only());
        for model in [ReplicaModel::DiscreteServers, ReplicaModel::InputSplit] {
            let des = simulate_des(&wl, &r, model);
            let rel = (des.makespan_ns - analytic.makespan_ns).abs() / analytic.makespan_ns;
            assert!(
                rel < 1e-9,
                "{model:?}: {} vs {}",
                des.makespan_ns,
                analytic.makespan_ns
            );
        }
    }

    #[test]
    fn input_split_tracks_the_token_bucket_closely() {
        let wl = ddi();
        let s = wl.stages().len();
        for r in [4usize, 16, 64, 256] {
            let reps = vec![r; s];
            let analytic = simulate(&wl, &reps, &PipelineOptions::intra_only());
            let des = simulate_des(&wl, &reps, ReplicaModel::InputSplit);
            let ratio = des.makespan_ns / analytic.makespan_ns;
            assert!(
                (0.99..1.25).contains(&ratio),
                "R={r}: DES/analytic ratio {ratio}"
            );
        }
    }

    #[test]
    fn discrete_servers_are_never_faster_than_the_analytic_bound() {
        // Same throughput, worse latency: the discrete model can only
        // lose to the idealized split.
        let wl = ddi();
        let s = wl.stages().len();
        for r in [2usize, 8, 32] {
            let reps = vec![r; s];
            let analytic = simulate(&wl, &reps, &PipelineOptions::intra_only());
            let des = simulate_des(&wl, &reps, ReplicaModel::DiscreteServers);
            assert!(
                des.makespan_ns >= analytic.makespan_ns * 0.999,
                "R={r}: {} vs {}",
                des.makespan_ns,
                analytic.makespan_ns
            );
        }
    }

    #[test]
    fn replicas_help_under_both_models() {
        let wl = ddi();
        let s = wl.stages().len();
        for model in [ReplicaModel::DiscreteServers, ReplicaModel::InputSplit] {
            let base = simulate_des(&wl, &vec![1; s], model);
            let boosted = simulate_des(&wl, &vec![16; s], model);
            assert!(
                boosted.makespan_ns < 0.3 * base.makespan_ns,
                "{model:?}: {} vs {}",
                boosted.makespan_ns,
                base.makespan_ns
            );
        }
    }

    #[test]
    fn faulty_des_with_inert_session_is_bit_identical() {
        let wl = ddi();
        let s = wl.stages().len();
        let shape = vec![8usize; s];
        for model in [ReplicaModel::DiscreteServers, ReplicaModel::InputSplit] {
            let clean = simulate_des(&wl, &vec![4; s], model);
            let mut session = gopim_faults::FaultSession::disabled(&shape);
            let faulty = simulate_des_faulty(&wl, &vec![4; s], model, &mut session);
            assert_eq!(clean.makespan_ns.to_bits(), faulty.makespan_ns.to_bits());
            assert_eq!(clean.completions_ns, faulty.completions_ns);
            assert_eq!(*session.stats(), gopim_faults::SessionStats::default());
        }
    }

    #[test]
    fn faults_with_mitigation_strictly_stretch_the_makespan() {
        use gopim_faults::{FaultConfig, FaultPlan, FaultSession, MitigationPolicy, SessionConfig};
        let wl = ddi();
        let s = wl.stages().len();
        let reps = vec![4; s];
        let clean = simulate_des(&wl, &reps, ReplicaModel::DiscreteServers);
        let shape = vec![16usize; s];
        let plan = FaultPlan::generate(
            FaultConfig {
                seed: 7,
                stuck_rate: 0.5,
                transient_rate: 0.05,
                horizon_ns: clean.makespan_ns,
            },
            &shape,
        );
        let mut cfg = SessionConfig::new(MitigationPolicy::Remap);
        cfg.spare_groups = 2;
        let run = |mut session: FaultSession| {
            let r = simulate_des_faulty(&wl, &reps, ReplicaModel::DiscreteServers, &mut session);
            (r, *session.stats())
        };
        let (a, sa) = run(FaultSession::new(plan.clone(), cfg, &shape));
        let (b, sb) = run(FaultSession::new(plan, cfg, &shape));
        // Replays bit-identically from the same seed.
        assert_eq!(a.makespan_ns.to_bits(), b.makespan_ns.to_bits());
        assert_eq!(sa, sb);
        // And degradation is real but graceful.
        assert!(a.makespan_ns > clean.makespan_ns, "no degradation");
        assert!(sa.injected > 0);
        assert!(sa.remapped > 0);
        assert!(sa.extra_write_ns > 0.0);
    }

    #[test]
    fn completions_are_monotone_per_stage() {
        let wl = ddi();
        let s = wl.stages().len();
        let des = simulate_des(&wl, &vec![8; s], ReplicaModel::DiscreteServers);
        for i in 0..s {
            // Completion order can interleave across servers, but the
            // final stage's completion drives the next micro-batch's
            // dependency chain, which the makespan reflects.
            let max = des.completions_ns[i].iter().cloned().fold(0.0, f64::max);
            assert!(max <= des.makespan_ns + 1e-9);
        }
    }
}
