//! Microbenchmarks for sparse Â·X aggregation (the GCN Aggregation
//! stage): symmetric-normalized propagation and the SAGE-style mean
//! aggregator over synthetic power-law graphs.
//!
//! `GOPIM_THREADS` controls the pool fan-out; outputs are row-wise
//! deterministic, so every thread count produces identical bits.

use gopim_gcn::aggregate::{MeanAggregator, NormalizedAdjacency, Propagation};
use gopim_graph::generate::{chung_lu, power_law_profile};
use gopim_linalg::Matrix;
use gopim_testkit::bench::Runner;

fn features(n: usize, d: usize) -> Matrix {
    Matrix::from_vec(
        n,
        d,
        (0..n * d).map(|i| ((i as f64) * 0.13).cos()).collect(),
    )
}

fn main() {
    let mut runner = Runner::new("aggregate");
    for &(n, avg_deg, d) in &[(1_000usize, 8.0f64, 32usize), (4_000, 16.0, 64)] {
        let profile = power_law_profile(n, avg_deg, 2.2, 0.5, 0x9a6);
        let graph = chung_lu(&profile, 0x517);
        let x = features(n, d);
        let norm = NormalizedAdjacency::new(&graph);
        runner.bench(&format!("normalized/{n}v-d{d}"), || {
            norm.propagate(&graph, &x)
        });
        let mean = MeanAggregator::new();
        runner.bench(&format!("mean/{n}v-d{d}"), || mean.propagate(&graph, &x));
    }
    runner.finish();
}
