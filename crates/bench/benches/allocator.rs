//! Decision-latency microbenchmarks for the replica allocators.
//!
//! The paper's §V-B motivation: dynamic-programming-class searches can
//! take days on large inputs, while GoPIM's max-heap greedy decides in
//! (sub-)milliseconds. These benches quantify the gap on a real
//! ddi-shaped allocation problem.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gopim_alloc::{fixed, greedy_allocate, reference_allocate, AllocInput};
use gopim_graph::datasets::Dataset;
use gopim_pipeline::{GcnWorkload, WorkloadOptions};
use gopim_reram::spec::AcceleratorSpec;
use std::hint::black_box;

fn ddi_input(budget: usize) -> AllocInput {
    let wl = GcnWorkload::build(Dataset::Ddi, &WorkloadOptions::default());
    let spec = AcceleratorSpec::paper();
    let n_mb = wl.num_microbatches();
    AllocInput {
        compute_ns: wl.stages().iter().map(|s| s.compute_ns).collect(),
        write_ns: (0..wl.stages().len())
            .map(|i| {
                (0..n_mb).map(|j| wl.write_ns(i, j)).sum::<f64>() / n_mb as f64
                    + wl.overhead_ns()
            })
            .collect(),
        quantum_ns: vec![spec.mvm_latency_ns(); wl.stages().len()],
        crossbars_per_replica: wl
            .stages()
            .iter()
            .map(|s| s.crossbars_per_replica)
            .collect(),
        unused_crossbars: budget,
        num_microbatches: n_mb,
        max_replicas: None,
    }
}

fn bench_allocators(c: &mut Criterion) {
    let mut group = c.benchmark_group("allocator");
    for budget in [100_000usize, 1_000_000, 16_000_000] {
        let input = ddi_input(budget);
        group.bench_with_input(
            BenchmarkId::new("greedy_alg1", budget),
            &input,
            |b, input| b.iter(|| black_box(greedy_allocate(input))),
        );
        group.bench_with_input(
            BenchmarkId::new("uniform", budget),
            &input,
            |b, input| b.iter(|| black_box(fixed::uniform(input))),
        );
    }
    // The reference search only at the small budget — it is the slow
    // baseline the greedy replaces.
    let input = ddi_input(100_000);
    group.sample_size(10);
    group.bench_function("reference_tau_sweep/100000", |b| {
        b.iter(|| black_box(reference_allocate(&input)))
    });
    group.finish();
}

criterion_group!(benches, bench_allocators);
criterion_main!(benches);
