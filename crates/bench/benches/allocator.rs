//! Decision-latency microbenchmarks for the replica allocators.
//!
//! The paper's §V-B motivation: dynamic-programming-class searches can
//! take days on large inputs, while GoPIM's max-heap greedy decides in
//! (sub-)milliseconds. These benches quantify the gap on a real
//! ddi-shaped allocation problem.

use gopim_alloc::{fixed, greedy_allocate, reference_allocate, AllocInput};
use gopim_graph::datasets::Dataset;
use gopim_pipeline::{GcnWorkload, WorkloadOptions};
use gopim_reram::spec::AcceleratorSpec;
use gopim_testkit::bench::Runner;

fn ddi_input(budget: usize) -> AllocInput {
    let wl = GcnWorkload::build(Dataset::Ddi, &WorkloadOptions::default());
    let spec = AcceleratorSpec::paper();
    let n_mb = wl.num_microbatches();
    AllocInput {
        compute_ns: wl.stages().iter().map(|s| s.compute_ns).collect(),
        write_ns: (0..wl.stages().len())
            .map(|i| {
                (0..n_mb).map(|j| wl.write_ns(i, j)).sum::<f64>() / n_mb as f64 + wl.overhead_ns()
            })
            .collect(),
        quantum_ns: vec![spec.mvm_latency_ns(); wl.stages().len()],
        crossbars_per_replica: wl
            .stages()
            .iter()
            .map(|s| s.crossbars_per_replica)
            .collect(),
        unused_crossbars: budget,
        num_microbatches: n_mb,
        max_replicas: None,
    }
}

fn main() {
    let mut runner = Runner::new("allocator");
    for budget in [100_000usize, 1_000_000, 16_000_000] {
        let input = ddi_input(budget);
        runner.bench(&format!("greedy_alg1/{budget}"), || greedy_allocate(&input));
        runner.bench(&format!("uniform/{budget}"), || fixed::uniform(&input));
    }
    // The reference search only at the small budget — it is the slow
    // baseline the greedy replaces.
    let input = ddi_input(100_000);
    runner.bench("reference_tau_sweep/100000", || reference_allocate(&input));
    runner.finish();
}
