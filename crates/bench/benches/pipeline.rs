//! Microbenchmarks for workload construction, schedule simulation and
//! the discrete-event engine — the inner loop of every experiment in
//! the harness.

use gopim_graph::datasets::Dataset;
use gopim_pipeline::des::{simulate_des, ReplicaModel};
use gopim_pipeline::{simulate, GcnWorkload, PipelineOptions, WorkloadOptions};
use gopim_testkit::bench::Runner;

fn main() {
    let mut runner = Runner::new("pipeline");
    for dataset in [Dataset::Ddi, Dataset::Collab] {
        let name = dataset.name();
        runner.bench(&format!("build_workload/{name}"), || {
            GcnWorkload::build(dataset, &WorkloadOptions::default())
        });
        let wl = GcnWorkload::build(dataset, &WorkloadOptions::default());
        let replicas = vec![8; wl.stages().len()];
        runner.bench(&format!("simulate_pipelined/{name}"), || {
            simulate(&wl, &replicas, &PipelineOptions::default())
        });
    }
    // The DES event loop proper: small micro-batches make many events,
    // large replica pools make each event-queue operation expensive —
    // the configuration where the queue implementation dominates.
    for (dataset, micro_batch) in [(Dataset::Ddi, 16), (Dataset::Collab, 32)] {
        let name = dataset.name();
        let wl = GcnWorkload::build(
            dataset,
            &WorkloadOptions {
                micro_batch,
                ..WorkloadOptions::default()
            },
        );
        for r in [8usize, 256] {
            let replicas = vec![r; wl.stages().len()];
            runner.bench(&format!("simulate_des/{name}-b{micro_batch}-R{r}"), || {
                simulate_des(&wl, &replicas, ReplicaModel::DiscreteServers)
            });
        }
    }
    // A fig04-style DES sweep: every motivation dataset through the
    // event engine back to back (the shape of the experiment bins).
    let sweep: Vec<GcnWorkload> = Dataset::MOTIVATION
        .iter()
        .map(|&d| GcnWorkload::build(d, &WorkloadOptions::default()))
        .collect();
    runner.bench("des_sweep/motivation-R64", || {
        sweep
            .iter()
            .map(|wl| {
                let replicas = vec![64; wl.stages().len()];
                simulate_des(wl, &replicas, ReplicaModel::DiscreteServers).makespan_ns
            })
            .sum::<f64>()
    });
    runner.finish();
}
