//! Microbenchmarks for workload construction and schedule simulation —
//! the inner loop of every experiment in the harness.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gopim_graph::datasets::Dataset;
use gopim_pipeline::{simulate, GcnWorkload, PipelineOptions, WorkloadOptions};
use std::hint::black_box;

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline");
    for dataset in [Dataset::Ddi, Dataset::Collab] {
        group.bench_with_input(
            BenchmarkId::new("build_workload", dataset.name()),
            &dataset,
            |b, &d| b.iter(|| black_box(GcnWorkload::build(d, &WorkloadOptions::default()))),
        );
        let wl = GcnWorkload::build(dataset, &WorkloadOptions::default());
        let replicas = vec![8; wl.stages().len()];
        group.bench_with_input(
            BenchmarkId::new("simulate_pipelined", dataset.name()),
            &wl,
            |b, wl| {
                b.iter(|| black_box(simulate(wl, &replicas, &PipelineOptions::default())))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
