//! Microbenchmarks for workload construction and schedule simulation —
//! the inner loop of every experiment in the harness.

use gopim_graph::datasets::Dataset;
use gopim_pipeline::{simulate, GcnWorkload, PipelineOptions, WorkloadOptions};
use gopim_testkit::bench::Runner;

fn main() {
    let mut runner = Runner::new("pipeline");
    for dataset in [Dataset::Ddi, Dataset::Collab] {
        let name = dataset.name();
        runner.bench(&format!("build_workload/{name}"), || {
            GcnWorkload::build(dataset, &WorkloadOptions::default())
        });
        let wl = GcnWorkload::build(dataset, &WorkloadOptions::default());
        let replicas = vec![8; wl.stages().len()];
        runner.bench(&format!("simulate_pipelined/{name}"), || {
            simulate(&wl, &replicas, &PipelineOptions::default())
        });
    }
    runner.finish();
}
