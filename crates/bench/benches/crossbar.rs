//! Microbenchmarks for the functional (bit-accurate) crossbar model.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gopim_reram::crossbar::FunctionalCrossbar;
use gopim_reram::spec::AcceleratorSpec;
use std::hint::black_box;

fn weights(rows: usize, cols: usize) -> Vec<Vec<f64>> {
    (0..rows)
        .map(|r| (0..cols).map(|c| ((r * cols + c) as f64).sin() * 0.8).collect())
        .collect()
}

fn bench_crossbar(c: &mut Criterion) {
    let spec = AcceleratorSpec::paper();
    let mut group = c.benchmark_group("crossbar");
    for &(rows, cols) in &[(64usize, 64usize), (256, 64), (256, 256)] {
        let w = weights(rows, cols);
        group.bench_with_input(
            BenchmarkId::new("program", format!("{rows}x{cols}")),
            &w,
            |b, w| b.iter(|| black_box(FunctionalCrossbar::program(&spec, w, 1.0))),
        );
        let xbar = FunctionalCrossbar::program(&spec, &w, 1.0);
        let input: Vec<f64> = (0..rows).map(|i| (i as f64 * 0.13).cos()).collect();
        group.bench_with_input(
            BenchmarkId::new("mvm", format!("{rows}x{cols}")),
            &xbar,
            |b, xbar| b.iter(|| black_box(xbar.mvm(&input, 1.0))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_crossbar);
criterion_main!(benches);
