//! Microbenchmarks for the functional (bit-accurate) crossbar model.

use gopim_reram::crossbar::FunctionalCrossbar;
use gopim_reram::spec::AcceleratorSpec;
use gopim_testkit::bench::Runner;

fn weights(rows: usize, cols: usize) -> Vec<Vec<f64>> {
    (0..rows)
        .map(|r| {
            (0..cols)
                .map(|c| ((r * cols + c) as f64).sin() * 0.8)
                .collect()
        })
        .collect()
}

fn main() {
    let spec = AcceleratorSpec::paper();
    let mut runner = Runner::new("crossbar");
    for &(rows, cols) in &[(64usize, 64usize), (256, 64), (256, 256)] {
        let w = weights(rows, cols);
        runner.bench(&format!("program/{rows}x{cols}"), || {
            FunctionalCrossbar::program(&spec, &w, 1.0)
        });
        let xbar = FunctionalCrossbar::program(&spec, &w, 1.0);
        let input: Vec<f64> = (0..rows).map(|i| (i as f64 * 0.13).cos()).collect();
        runner.bench(&format!("mvm/{rows}x{cols}"), || xbar.mvm(&input, 1.0));
    }
    runner.finish();
}
