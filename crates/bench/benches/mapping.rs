//! Microbenchmarks for the ISU data mapper (the CPU-side component of
//! §IV-A(6)): degree-interleaved mapping and selective-update mask
//! construction on full-size dataset profiles.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gopim_graph::datasets::Dataset;
use gopim_mapping::{index_based, interleaved, update_load, SelectivePolicy};
use std::hint::black_box;

fn bench_mapping(c: &mut Criterion) {
    let mut group = c.benchmark_group("mapping");
    for dataset in [Dataset::Ddi, Dataset::Collab, Dataset::Proteins] {
        let profile = dataset.profile(7);
        group.bench_with_input(
            BenchmarkId::new("interleaved", dataset.name()),
            &profile,
            |b, p| b.iter(|| black_box(interleaved(p, 64))),
        );
        group.bench_with_input(
            BenchmarkId::new("index_based", dataset.name()),
            &profile,
            |b, p| b.iter(|| black_box(index_based(p.num_vertices(), 64))),
        );
        let mapping = interleaved(&profile, 64);
        let policy = SelectivePolicy::adaptive(&profile);
        group.bench_with_input(
            BenchmarkId::new("selective_load", dataset.name()),
            &(&mapping, &profile),
            |b, (m, p)| {
                b.iter(|| {
                    let mask = policy.important_vertices(p);
                    black_box(update_load(m, &mask))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_mapping);
criterion_main!(benches);
