//! Microbenchmarks for the ISU data mapper (the CPU-side component of
//! §IV-A(6)): degree-interleaved mapping and selective-update mask
//! construction on full-size dataset profiles.

use gopim_graph::datasets::Dataset;
use gopim_mapping::{index_based, interleaved, update_load, SelectivePolicy};
use gopim_testkit::bench::Runner;

fn main() {
    let mut runner = Runner::new("mapping");
    for dataset in [Dataset::Ddi, Dataset::Collab, Dataset::Proteins] {
        let profile = dataset.profile(7);
        let name = dataset.name();
        runner.bench(&format!("interleaved/{name}"), || interleaved(&profile, 64));
        runner.bench(&format!("index_based/{name}"), || {
            index_based(profile.num_vertices(), 64)
        });
        let mapping = interleaved(&profile, 64);
        let policy = SelectivePolicy::adaptive(&profile);
        runner.bench(&format!("selective_load/{name}"), || {
            let mask = policy.important_vertices(&profile);
            update_load(&mapping, &mask)
        });
    }
    runner.finish();
}
