//! Microbenchmarks for the dense linear-algebra hot path: square and
//! MLP-shaped matmuls plus an allocation-free `matmul_into` loop.
//!
//! These are the kernels behind the Time Predictor's training
//! (`gopim-linalg::Mlp`) and the GCN Combination stages; the
//! `GOPIM_THREADS` env var controls how many pool workers they fan
//! out over (results are bit-identical at any thread count).

use gopim_linalg::Matrix;
use gopim_testkit::bench::Runner;

fn filled(rows: usize, cols: usize) -> Matrix {
    Matrix::from_vec(
        rows,
        cols,
        (0..rows * cols)
            .map(|i| ((i as f64) * 0.37).sin())
            .collect(),
    )
}

fn main() {
    let mut runner = Runner::new("linalg");
    for &n in &[64usize, 128, 256] {
        let a = filled(n, n);
        let b = filled(n, n);
        runner.bench(&format!("matmul/{n}x{n}"), || a.matmul(&b));
    }
    // The predictor's training shapes: a 64-row micro-batch through the
    // 10-256-1 MLP's two layers.
    let x = filled(64, 10);
    let w1 = filled(10, 256);
    let h = filled(64, 256);
    let w2 = filled(256, 1);
    runner.bench("matmul/mlp-64x10x256", || x.matmul(&w1));
    runner.bench("matmul/mlp-64x256x1", || h.matmul(&w2));
    runner.finish();
}
