//! Microbenchmarks for the Time Predictor: inference latency (the
//! paper's §VII-G claims milliseconds for a whole workload) and one
//! training epoch.

use criterion::{criterion_group, criterion_main, Criterion};
use gopim_graph::datasets::Dataset;
use gopim_pipeline::{GcnWorkload, WorkloadOptions};
use gopim_predictor::dataset_gen::generate_samples;
use gopim_predictor::TimePredictor;
use std::hint::black_box;

fn bench_predictor(c: &mut Criterion) {
    let samples = generate_samples(400, 42);
    let predictor = TimePredictor::train_paper(&samples, 30, 9);
    let wl = GcnWorkload::build(Dataset::Ddi, &WorkloadOptions::default());
    let avg = Dataset::Ddi.stats().avg_degree;

    c.bench_function("predictor/infer_all_stages_ddi", |b| {
        b.iter(|| black_box(predictor.predict_stage_times_ns(&wl, avg)))
    });

    let mut group = c.benchmark_group("predictor_train");
    group.sample_size(10);
    group.bench_function("train_10_epochs_400_samples", |b| {
        b.iter(|| black_box(TimePredictor::train(&samples, 3, 64, 10, 1)))
    });
    group.finish();
}

criterion_group!(benches, bench_predictor);
criterion_main!(benches);
