//! Microbenchmarks for the Time Predictor: inference latency (the
//! paper's §VII-G claims milliseconds for a whole workload) and one
//! training epoch.

use gopim_graph::datasets::Dataset;
use gopim_pipeline::{GcnWorkload, WorkloadOptions};
use gopim_predictor::dataset_gen::generate_samples;
use gopim_predictor::TimePredictor;
use gopim_testkit::bench::Runner;

fn main() {
    let samples = generate_samples(400, 42);
    let predictor = TimePredictor::train_paper(&samples, 30, 9);
    let wl = GcnWorkload::build(Dataset::Ddi, &WorkloadOptions::default());
    let avg = Dataset::Ddi.stats().avg_degree;

    let mut runner = Runner::new("predictor");
    runner.bench("infer_all_stages_ddi", || {
        predictor.predict_stage_times_ns(&wl, avg)
    });
    runner.bench("train_10_epochs_400_samples", || {
        TimePredictor::train(&samples, 3, 64, 10, 1)
    });
    runner.finish();
}
