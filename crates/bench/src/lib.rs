//! Shared plumbing for the experiment binaries (`fig04` … `table07`).
//!
//! Every binary accepts:
//!
//! - `--quick` — run at reduced scale (smaller crossbar budget, fewer
//!   samples/epochs) for smoke-testing;
//! - `--budget <crossbars>` — override the crossbar budget (default:
//!   the full 16 GB chip, 16,777,216 crossbars).
//!
//! Regenerate everything with:
//!
//! ```text
//! for f in fig04 fig05 fig06 fig09 fig13 fig14 fig15 fig16 fig17 \
//!          table05 table06 table07; do
//!     cargo run --release -p gopim-bench --bin $f
//! done
//! ```

use gopim::runner::RunConfig;

/// Parsed command-line options shared by the experiment binaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchArgs {
    /// Reduced-scale smoke run.
    pub quick: bool,
    /// Crossbar budget override.
    pub budget: Option<usize>,
    /// Remaining free arguments.
    pub rest: Vec<String>,
}

impl BenchArgs {
    /// Parses `std::env::args`-style arguments (skips the binary name).
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut quick = false;
        let mut budget = None;
        let mut rest = Vec::new();
        let mut iter = args.into_iter().skip(1);
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--quick" => quick = true,
                "--budget" => {
                    budget = iter
                        .next()
                        .and_then(|v| v.parse::<usize>().ok())
                        .or_else(|| {
                            eprintln!("--budget expects an integer");
                            None
                        });
                }
                other => rest.push(other.to_string()),
            }
        }
        BenchArgs {
            quick,
            budget,
            rest,
        }
    }

    /// Parses the real process arguments.
    pub fn from_env() -> Self {
        Self::parse(std::env::args())
    }

    /// The run configuration these arguments imply.
    pub fn run_config(&self) -> RunConfig {
        RunConfig {
            crossbar_budget: self
                .budget
                .or(if self.quick { Some(400_000) } else { None }),
            ..RunConfig::default()
        }
    }

    /// Scales a sample/epoch count down in quick mode.
    pub fn scaled(&self, full: usize, quick: usize) -> usize {
        if self.quick {
            quick
        } else {
            full
        }
    }
}

/// Prints the standard experiment banner.
pub fn banner(id: &str, description: &str) {
    println!("== GoPIM reproduction :: {id} ==");
    println!("{description}");
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> BenchArgs {
        BenchArgs::parse(
            std::iter::once("bin".to_string()).chain(args.iter().map(|s| s.to_string())),
        )
    }

    #[test]
    fn parses_flags() {
        let a = parse(&["--quick", "--budget", "1000", "extra"]);
        assert!(a.quick);
        assert_eq!(a.budget, Some(1000));
        assert_eq!(a.rest, vec!["extra"]);
    }

    #[test]
    fn default_is_full_chip() {
        let a = parse(&[]);
        assert!(!a.quick);
        assert_eq!(a.run_config().crossbar_budget, None);
    }

    #[test]
    fn quick_mode_reduces_budget_and_counts() {
        let a = parse(&["--quick"]);
        assert_eq!(a.run_config().crossbar_budget, Some(400_000));
        assert_eq!(a.scaled(2200, 300), 300);
    }
}
