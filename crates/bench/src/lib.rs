//! Shared plumbing for the experiment binaries (`fig04` … `table07`).
//!
//! Every binary accepts:
//!
//! - `--quick` — run at reduced scale (smaller crossbar budget, fewer
//!   samples/epochs) for smoke-testing;
//! - `--budget <crossbars>` — override the crossbar budget (default:
//!   the full 16 GB chip, 16,777,216 crossbars).
//!
//! Regenerate everything with:
//!
//! ```text
//! for f in fig04 fig05 fig06 fig09 fig13 fig14 fig15 fig16 fig17 \
//!          table05 table06 table07; do
//!     cargo run --release -p gopim-bench --bin $f
//! done
//! ```

use gopim::runner::RunConfig;

/// Parsed command-line options shared by the experiment binaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchArgs {
    /// Reduced-scale smoke run.
    pub quick: bool,
    /// Crossbar budget override.
    pub budget: Option<usize>,
    /// Remaining free arguments.
    pub rest: Vec<String>,
}

impl BenchArgs {
    /// Parses `std::env::args`-style arguments (skips the binary name).
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut quick = false;
        let mut budget = None;
        let mut rest = Vec::new();
        let mut iter = args.into_iter().skip(1);
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--quick" => quick = true,
                "--budget" => {
                    budget = iter
                        .next()
                        .and_then(|v| v.parse::<usize>().ok())
                        .or_else(|| {
                            gopim_obs::log_warn!("--budget expects an integer");
                            None
                        });
                }
                other => rest.push(other.to_string()),
            }
        }
        BenchArgs {
            quick,
            budget,
            rest,
        }
    }

    /// Parses the real process arguments.
    pub fn from_env() -> Self {
        Self::parse(std::env::args())
    }

    /// The run configuration these arguments imply.
    pub fn run_config(&self) -> RunConfig {
        RunConfig {
            crossbar_budget: self
                .budget
                .or(if self.quick { Some(400_000) } else { None }),
            ..RunConfig::default()
        }
    }

    /// Scales a sample/epoch count down in quick mode.
    pub fn scaled(&self, full: usize, quick: usize) -> usize {
        if self.quick {
            quick
        } else {
            full
        }
    }
}

/// Prints the standard experiment banner.
pub fn banner(id: &str, description: &str) {
    // lint:allow(no-print-in-lib): banner helper that experiment binaries call to open their stdout report
    println!("== GoPIM reproduction :: {id} ==");
    // lint:allow(no-print-in-lib): same banner helper, description line
    println!("{description}");
    // lint:allow(no-print-in-lib): same banner helper, trailing blank line
    println!();
}

/// Attaches telemetry for an experiment binary: holds the
/// [`gopim_obs::TelemetryGuard`] that flushes `GOPIM_TRACE` /
/// `GOPIM_METRICS` output on drop. When tracing is on, first runs a
/// tiny host-kernel calibration (one matmul, one aggregation) so every
/// trace carries `linalg.*`, `gcn.*` and `par.*` wall-clock spans even
/// for binaries whose experiment path is purely analytic.
///
/// Bind the result for the whole of `main`:
///
/// ```no_run
/// let _telemetry = gopim_bench::telemetry();
/// ```
pub fn telemetry() -> gopim_obs::TelemetryGuard {
    let guard = gopim_obs::attach();
    if gopim_obs::trace_enabled() {
        let _span = gopim_obs::span!("bench.calibrate");
        let fill = |rows: usize, cols: usize, salt: usize| {
            let data = (0..rows * cols)
                .map(|i| ((i * 31 + salt) % 13) as f64 * 0.1)
                .collect();
            gopim_linalg::Matrix::from_vec(rows, cols, data)
        };
        let c = fill(64, 64, 0).matmul(&fill(64, 64, 7));
        std::hint::black_box(&c);
        let n = 256u32;
        let edges: Vec<(u32, u32)> = (0..n).map(|v| (v, (v + 1) % n)).collect();
        let graph = gopim_graph::CsrGraph::from_edges(n as usize, &edges);
        let adj = gopim_gcn::aggregate::NormalizedAdjacency::new(&graph);
        let y = adj.apply(&graph, &fill(n as usize, 16, 3));
        std::hint::black_box(&y);
    }
    guard
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> BenchArgs {
        BenchArgs::parse(
            std::iter::once("bin".to_string()).chain(args.iter().map(|s| s.to_string())),
        )
    }

    #[test]
    fn parses_flags() {
        let a = parse(&["--quick", "--budget", "1000", "extra"]);
        assert!(a.quick);
        assert_eq!(a.budget, Some(1000));
        assert_eq!(a.rest, vec!["extra"]);
    }

    #[test]
    fn default_is_full_chip() {
        let a = parse(&[]);
        assert!(!a.quick);
        assert_eq!(a.run_config().crossbar_budget, None);
    }

    #[test]
    fn quick_mode_reduces_budget_and_counts() {
        let a = parse(&["--quick"]);
        assert_eq!(a.run_config().crossbar_budget, Some(400_000));
        assert_eq!(a.scaled(2200, 300), 300);
    }
}
