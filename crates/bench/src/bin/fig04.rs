//! Regenerates Fig. 4: idle-time percentage of crossbars per forward
//! stage under a SlimGNN-style pipeline, across the motivation
//! datasets.

use gopim::experiments::fig04;
use gopim::report;
use gopim_bench::{banner, BenchArgs};
use gopim_graph::datasets::Dataset;

fn main() {
    let _telemetry = gopim_bench::telemetry();
    let args = BenchArgs::from_env();
    banner(
        "Fig. 4",
        "Idle time of crossbars per stage (XBSi), SlimGNN-like pipeline.\n\
         Paper: CO-stage crossbars (XBS1/3/5) idle 98.47/97.50/99.03% on average.",
    );
    let config = args.run_config();
    let datasets: Vec<Dataset> = if args.quick {
        vec![Dataset::Ddi, Dataset::Cora]
    } else {
        Dataset::MOTIVATION.to_vec()
    };
    let rows = fig04::run(&config, &datasets);
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.dataset.clone(),
                r.stage.clone(),
                r.kind.clone(),
                report::percent(r.idle_fraction),
            ]
        })
        .collect();
    println!(
        "{}",
        report::table(
            &["dataset", "crossbar group", "stage", "idle time"],
            &table_rows
        )
    );

    // The paper's headline: average CO-stage idle across datasets.
    let co: Vec<f64> = rows
        .iter()
        .filter(|r| r.kind.starts_with("CO"))
        .map(|r| r.idle_fraction)
        .collect();
    println!(
        "Average Combination-crossbar idle: {} (paper: 97.5-99.0%)",
        report::percent(co.iter().sum::<f64>() / co.len() as f64)
    );
}
