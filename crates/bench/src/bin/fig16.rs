//! Regenerates Fig. 16: (a) accuracy vs θ on a dense graph (ddi),
//! (b) accuracy vs θ on a sparse graph (Cora), (c) speedup vs
//! micro-batch size.

use gopim::experiments::fig16;
use gopim::report;
use gopim_bench::{banner, BenchArgs};
use gopim_gcn::train::TrainOptions;
use gopim_graph::datasets::Dataset;

fn main() {
    let _telemetry = gopim_bench::telemetry();
    let args = BenchArgs::from_env();
    banner(
        "Fig. 16",
        "Sensitivity studies. Paper: θ=50% safe for dense graphs (ddi), θ=80% for\n\
         sparse graphs (Cora), both within 1% accuracy; speedup grows with micro-batch.",
    );
    let max_vertices = args.scaled(1200, 250);
    let train = if args.quick {
        TrainOptions::quick_test()
    } else {
        TrainOptions::experiment()
    };
    let thetas = [0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0];

    for (label, dataset) in [
        ("(a) dense (ddi)", Dataset::Ddi),
        ("(b) sparse (Cora)", Dataset::Cora),
    ] {
        println!("{label}: accuracy vs update threshold θ");
        let rows = fig16::theta_sweep(dataset, &thetas, max_vertices, &train, 17);
        let table_rows: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    format!("{:.0}%", r.theta * 100.0),
                    report::percent(r.test_accuracy),
                ]
            })
            .collect();
        println!("{}", report::table(&["θ", "test accuracy"], &table_rows));
    }

    println!("(c) GoPIM speedup vs micro-batch size (ddi):");
    let sizes: &[usize] = if args.quick {
        &[16, 64]
    } else {
        &[16, 32, 64, 128, 256]
    };
    let rows = fig16::batch_sweep(&args.run_config(), Dataset::Ddi, sizes);
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| vec![r.micro_batch.to_string(), report::speedup(r.speedup)])
        .collect();
    println!(
        "{}",
        report::table(&["micro-batch", "speedup vs Serial"], &table_rows)
    );
}
