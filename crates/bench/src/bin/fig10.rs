//! Regenerates Fig. 10: the pipeline timeline of a 2-layer GCN training
//! batch on the ReRAM accelerator — the 8-stage chain
//! CO1→AG1→CO2→AG2→LC2→GC2→LC1→GC1 with micro-batches flowing through
//! (the paper draws B = 3).

use gopim::report;
use gopim_bench::{banner, BenchArgs};
use gopim_graph::datasets::Dataset;
use gopim_pipeline::schedule::{simulate, simulate_traced, PipelineOptions};
use gopim_pipeline::trace::render_gantt;
use gopim_pipeline::{GcnWorkload, WorkloadOptions};

fn main() {
    let _telemetry = gopim_bench::telemetry();
    let _args = BenchArgs::from_env();
    banner(
        "Fig. 10",
        "Pipeline of 2-layer GCN training: 8 stages, micro-batches overlapping under\n\
         the Eq. 3-6 dependency rules (# compute, w write, . dispatch).",
    );
    // A small slice of ddi so a handful of micro-batches fits one page:
    // keep only the first 3 micro-batches' worth of vertices.
    let options = WorkloadOptions {
        micro_batch: 64,
        ..WorkloadOptions::default()
    };
    let wl = GcnWorkload::build(Dataset::Ddi, &options);
    let replicas = vec![1; wl.stages().len()];

    println!("(a) Serial — no overlap:");
    let (_, serial_events) = simulate_traced(&wl, &replicas, &PipelineOptions::serial());
    let head: Vec<_> = serial_events
        .iter()
        .filter(|e| e.microbatch < 3)
        .cloned()
        .collect();
    print!("{}", render_gantt(&wl, &head, 100));
    println!();

    println!("(b) Pipelined (intra-batch) — stages of consecutive micro-batches overlap:");
    let (_, piped_events) = simulate_traced(&wl, &replicas, &PipelineOptions::intra_only());
    let head: Vec<_> = piped_events
        .iter()
        .filter(|e| e.microbatch < 3)
        .cloned()
        .collect();
    print!("{}", render_gantt(&wl, &head, 100));
    println!();

    let serial = simulate(&wl, &replicas, &PipelineOptions::serial());
    let piped = simulate(&wl, &replicas, &PipelineOptions::intra_only());
    println!(
        "full batch ({} micro-batches): serial {}, pipelined {} ({} faster)",
        wl.num_microbatches(),
        report::time_ns(serial.makespan_ns),
        report::time_ns(piped.makespan_ns),
        report::speedup(serial.makespan_ns / piped.makespan_ns),
    );
}
