//! Fault-injection degradation campaign (reproduction extension, not a
//! paper figure).
//!
//! Sweeps stuck-at/transient fault rates against the three mitigation
//! policies on the GoPIM pipeline and prints the degradation table:
//! makespan, energy and stand-in accuracy relative to the fault-free
//! run. Seeded end to end — the same arguments replay bit-identically.
//!
//! Extra arguments on top of the shared `--quick` / `--budget`:
//!
//! - `<dataset>` — positional dataset name (default ddi);
//! - `--json <path>` — append one JSON line per table row;
//! - `--validate <path>` — parse a previously emitted JSON file —
//!   campaign JSON-lines or a `GOPIM_LINT_JSON` linter report —
//!   check its schema, and exit (no simulation).
//!
//! The fault knobs come from the same environment variables as
//! `gopim faults`: `GOPIM_FAULT_SEED`, `GOPIM_FAULT_RATES`,
//! `GOPIM_FAULT_SPARES`.

use gopim::cli::{parse_dataset, parse_fault_rates, parse_fault_seed, parse_fault_spares};
use gopim::experiments::faults::{degradation_table, run, CampaignConfig, CampaignReport};
use gopim_bench::{banner, BenchArgs};
use gopim_graph::datasets::Dataset;

fn json_line(report: &CampaignReport, row_index: usize) -> String {
    let r = &report.rows[row_index];
    format!(
        "{{\"id\":\"faults/{}/{}/{:.3}\",\"makespan_ns\":{},\"energy_nj\":{},\
         \"accuracy\":{},\"injected\":{},\"remapped\":{},\"retries\":{},\
         \"dropped_rows\":{},\"frozen\":{}}}",
        report.dataset,
        r.policy,
        r.fault_rate,
        r.makespan_ns,
        r.energy_nj,
        r.accuracy,
        r.injected,
        r.remapped,
        r.retries,
        r.dropped_rows,
        r.frozen_vertices,
    )
}

/// Validates an emitted JSON file with the in-repo parser. Two shapes
/// are accepted: a `GOPIM_LINT_JSON` linter report (one document with
/// a `findings` array) and the campaign's own JSON-lines output, where
/// every line must be an object with a string `id` and the numeric
/// degradation fields. Returns the record count and a label for it.
fn validate(path: &str) -> Result<(usize, &'static str), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read '{path}': {e}"))?;
    if let Ok(doc) = gopim_obs::export::parse_json(&text) {
        if doc.get("findings").is_some() {
            return validate_lint_report(path, &doc).map(|n| (n, "lint findings"));
        }
    }
    let mut checked = 0;
    for (n, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let value =
            gopim_obs::export::parse_json(line).map_err(|e| format!("{path}:{}: {e}", n + 1))?;
        value
            .get("id")
            .and_then(|v| v.as_str())
            .ok_or_else(|| format!("{path}:{}: missing string 'id'", n + 1))?;
        for key in [
            "makespan_ns",
            "energy_nj",
            "accuracy",
            "injected",
            "remapped",
            "retries",
            "dropped_rows",
            "frozen",
        ] {
            value
                .get(key)
                .and_then(|v| v.as_num())
                .ok_or_else(|| format!("{path}:{}: missing numeric '{key}'", n + 1))?;
        }
        checked += 1;
    }
    if checked == 0 {
        return Err(format!("'{path}' holds no campaign records"));
    }
    Ok((checked, "campaign records"))
}

/// Schema check for a `gopim lint` JSON report: numeric summary
/// fields, a non-empty `rules` array, and `file`/`line`/`rule`/
/// `message` on every finding.
fn validate_lint_report(path: &str, doc: &gopim_obs::export::Json) -> Result<usize, String> {
    for key in [
        "version",
        "files_scanned",
        "suppressed",
        "baseline_excused",
        "new_findings",
    ] {
        doc.get(key)
            .and_then(|v| v.as_num())
            .ok_or_else(|| format!("'{path}': missing numeric '{key}'"))?;
    }
    let rules = doc
        .get("rules")
        .and_then(|v| v.as_arr())
        .ok_or_else(|| format!("'{path}': missing 'rules' array"))?;
    if rules.is_empty() {
        return Err(format!("'{path}': empty 'rules' array"));
    }
    let findings = doc
        .get("findings")
        .and_then(|v| v.as_arr())
        .ok_or_else(|| format!("'{path}': 'findings' is not an array"))?;
    for (i, f) in findings.iter().enumerate() {
        for key in ["file", "rule", "message"] {
            f.get(key)
                .and_then(|v| v.as_str())
                .ok_or_else(|| format!("'{path}': finding {i}: missing string '{key}'"))?;
        }
        f.get("line")
            .and_then(|v| v.as_num())
            .ok_or_else(|| format!("'{path}': finding {i}: missing numeric 'line'"))?;
    }
    Ok(findings.len())
}

fn main() {
    let _telemetry = gopim_bench::telemetry();
    let args = BenchArgs::from_env();

    // --validate short-circuits: schema-check an emitted file and exit.
    let mut rest = args.rest.iter().map(String::as_str).peekable();
    let mut dataset = Dataset::Ddi;
    let mut json_path: Option<String> = None;
    while let Some(arg) = rest.next() {
        match arg {
            "--validate" => {
                let path = rest.next().expect("--validate expects a path");
                match validate(path) {
                    Ok((n, kind)) => {
                        println!("{path}: {n} {kind} ok");
                        return;
                    }
                    Err(msg) => {
                        eprintln!("{msg}");
                        std::process::exit(1);
                    }
                }
            }
            "--json" => {
                json_path = Some(rest.next().expect("--json expects a path").to_string());
            }
            name => {
                dataset = parse_dataset(name).unwrap_or_else(|e| panic!("{e}"));
            }
        }
    }

    banner(
        "Fault campaign (extension)",
        "Graceful degradation of the GoPIM pipeline under stuck-at and transient ReRAM\n\
         faults, per mitigation policy (baseline / retry / remap-to-spares).",
    );
    let env = |name: &str| std::env::var(name).ok();
    let mut config = CampaignConfig {
        seed: parse_fault_seed(env("GOPIM_FAULT_SEED").as_deref())
            .unwrap_or_else(|e| panic!("{e}")),
        fault_rates: parse_fault_rates(env("GOPIM_FAULT_RATES").as_deref())
            .unwrap_or_else(|e| panic!("{e}")),
        spare_fraction: parse_fault_spares(env("GOPIM_FAULT_SPARES").as_deref())
            .unwrap_or_else(|e| panic!("{e}")),
        ..CampaignConfig::default()
    };
    if let Some(budget) = args.run_config().crossbar_budget {
        config.crossbar_budget = Some(budget);
    }
    if args.quick {
        config.train_vertices = 160;
        config.epochs = 12;
    }

    let report = run(dataset, &config);
    println!("{}", degradation_table(&report));
    println!("Retry pays latency for transient faults; remap also re-steers dead crossbars");
    println!("to the allocator's spares, trading write time and energy for accuracy.");

    if let Some(path) = json_path {
        use std::io::Write;
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .unwrap_or_else(|e| panic!("--json {path}: {e}"));
        for i in 0..report.rows.len() {
            writeln!(file, "{}", json_line(&report, i))
                .unwrap_or_else(|e| panic!("--json {path}: {e}"));
        }
        println!("appended {} JSON records to {path}", report.rows.len());
    }
}
