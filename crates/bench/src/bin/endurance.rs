//! Endurance analysis (reproduction extension, not a paper figure).
//!
//! The paper's §IV-A(3) motivates the SRAM Weight Manager with write
//! endurance (ReRAM 10^8 vs SRAM 10^16). The same arithmetic applies to
//! the feature crossbars: selective updating writes less, and
//! interleaved mapping removes hot crossbars, so ISU extends the
//! array's lifetime. This binary quantifies the effect on the real
//! dataset profiles.

use gopim::report;
use gopim_bench::{banner, BenchArgs};
use gopim_graph::datasets::Dataset;
use gopim_mapping::{index_based, interleaved, SelectivePolicy};
use gopim_reram::endurance::WearProfile;
use gopim_reram::spec::AcceleratorSpec;

fn main() {
    let _telemetry = gopim_bench::telemetry();
    let args = BenchArgs::from_env();
    banner(
        "Endurance (extension)",
        "Feature-array lifetime (epochs to 1e8 writes on the hottest crossbar group,\n\
         with intra-crossbar wear-leveling) under full updating, OSU and ISU.",
    );
    let capacity = AcceleratorSpec::paper().crossbar_rows;
    let datasets: Vec<Dataset> = if args.quick {
        vec![Dataset::Ddi, Dataset::Cora]
    } else {
        Dataset::HEADLINE.to_vec()
    };
    // Per-dataset wear analyses are independent; fan them out and
    // flatten the per-dataset row groups in order.
    let profile_seed = args.run_config().profile_seed;
    let row_groups = gopim_par::par_map(&datasets, |&dataset| {
        let mut rows = Vec::new();
        let profile = dataset.profile(profile_seed);
        let policy = SelectivePolicy::adaptive(&profile);
        let mask_all = SelectivePolicy::update_all().important_vertices(&profile);
        let mask_sel = policy.important_vertices(&profile);
        let amort = |important: bool| -> f64 {
            if important {
                1.0
            } else {
                1.0 / policy.stale_period() as f64
            }
        };

        let index_map = index_based(profile.num_vertices(), capacity);
        let isu_map = interleaved(&profile, capacity);
        // Amortized per-epoch rewrite rows of each group under a mask.
        let group_rows = |mapping: &gopim_mapping::VertexMapping, mask: &[bool]| {
            mapping
                .groups()
                .iter()
                .map(|g| g.iter().map(|&v| amort(mask[v as usize])).sum::<f64>())
                .collect::<Vec<f64>>()
        };

        let full = WearProfile::from_group_rows(&group_rows(&index_map, &mask_all), capacity);
        let osu = WearProfile::from_group_rows(&group_rows(&index_map, &mask_sel), capacity);
        let isu = WearProfile::from_group_rows(&group_rows(&isu_map, &mask_sel), capacity);
        for (label, wear) in [("full", &full), ("OSU", &osu), ("ISU", &isu)] {
            rows.push(vec![
                dataset.name().to_string(),
                label.to_string(),
                format!("{:.3}", wear.max_row_writes_per_epoch),
                format!("{:.2e}", wear.lifetime_epochs()),
                format!("{:.2}x", wear.extension_over(&full)),
            ]);
        }
        rows
    });
    let rows: Vec<Vec<String>> = row_groups.into_iter().flatten().collect();
    println!(
        "{}",
        report::table(
            &[
                "dataset",
                "scheme",
                "hot-group writes/row/epoch",
                "lifetime (epochs)",
                "vs full"
            ],
            &rows
        )
    );
    println!("ISU's balance turns the selective-update savings into lifetime; OSU cannot");
    println!("(its hottest crossbar still rewrites every row every epoch).");
}
