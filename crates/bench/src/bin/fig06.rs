//! Regenerates Fig. 6: per-crossbar average vertex degree under
//! index-based mapping (plus the interleaved fix of Fig. 11).

use gopim::experiments::fig06;
use gopim::report;
use gopim_bench::{banner, BenchArgs};
use gopim_graph::datasets::Dataset;

fn main() {
    let _telemetry = gopim_bench::telemetry();
    let args = BenchArgs::from_env();
    banner(
        "Fig. 6",
        "Average degree of vertices mapped on each 64-row crossbar.\n\
         Paper (index mapping): ddi 151.8-827.4, proteins 1.6-2266.8, ppa 1-1716.9.",
    );
    let datasets: Vec<Dataset> = if args.quick {
        vec![Dataset::Ddi, Dataset::Proteins]
    } else {
        Dataset::MOTIVATION.to_vec()
    };
    let rows = fig06::run(&args.run_config(), &datasets);
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.dataset.clone(),
                r.mapping.clone(),
                format!("{:.1}", r.min_avg),
                format!("{:.1}", r.max_avg),
                format!("{:.1}", r.mean_avg),
            ]
        })
        .collect();
    println!(
        "{}",
        report::table(
            &[
                "dataset",
                "mapping",
                "min avg deg",
                "max avg deg",
                "mean avg deg"
            ],
            &table_rows
        )
    );
}
