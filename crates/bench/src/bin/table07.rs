//! Regenerates Table VII: GoPIM speedups when the allocator is driven
//! by the ML Time Predictor vs exact profiling-style estimates.

use gopim::experiments::table07;
use gopim::report;
use gopim_bench::{banner, BenchArgs};
use gopim_graph::datasets::Dataset;

fn main() {
    let _telemetry = gopim_bench::telemetry();
    let args = BenchArgs::from_env();
    banner(
        "Table VII",
        "ML vs profiling stage-time estimates feeding Algorithm 1. Paper: speedups\n\
         within 4.3% of each other (ddi 3454.31 vs 3469.17, collab 36.82 vs 36.82, ...).",
    );
    let datasets: Vec<Dataset> = if args.quick {
        vec![Dataset::Ddi]
    } else {
        Dataset::HEADLINE.to_vec()
    };
    let rows = table07::run(
        &args.run_config(),
        &datasets,
        args.scaled(2200, 400),
        args.scaled(400, 60),
        31,
    );
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.dataset.clone(),
                report::speedup(r.ml_speedup),
                report::speedup(r.profiling_speedup),
                report::percent(r.relative_gap),
            ]
        })
        .collect();
    println!(
        "{}",
        report::table(
            &["dataset", "ML speedup", "profiling speedup", "gap"],
            &table_rows
        )
    );
}
