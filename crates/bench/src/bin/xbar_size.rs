//! Crossbar-size design-space sweep (reproduction extension).
//!
//! The paper fixes 64×64 crossbars (Table II); its baseline ReGraphX
//! explores heterogeneous sizes. This sweep re-runs the headline
//! comparison at 32–256-row crossbars to show where 64×64 sits:
//! smaller arrays mean more write parallelism (more groups) but more
//! tiles to reduce over; bigger arrays amortize periphery but
//! concentrate writes.

use gopim::report;
use gopim_alloc::{greedy_allocate, AllocInput, AllocPlan};
use gopim_bench::{banner, BenchArgs};
use gopim_graph::datasets::Dataset;
use gopim_mapping::SelectivePolicy;
use gopim_pipeline::latency::LatencyParams;
use gopim_pipeline::{simulate, GcnWorkload, MappingKind, PipelineOptions, WorkloadOptions};
use gopim_reram::spec::AcceleratorSpec;

fn run_at_size(rows: usize, cols: usize, budget: Option<usize>) -> (f64, f64) {
    let mut spec = AcceleratorSpec::paper();
    // Keep total capacity constant: scale crossbars-per-PE inversely
    // with array cells.
    let cell_ratio = (rows * cols) as f64 / (64.0 * 64.0);
    spec.crossbar_rows = rows;
    spec.crossbar_cols = cols;
    spec.crossbars_per_pe = ((32.0 / cell_ratio).round() as usize).max(1);
    let total = budget.unwrap_or_else(|| spec.total_crossbars());
    let params = LatencyParams {
        spec: spec.clone(),
        ..LatencyParams::paper()
    };

    let dataset = Dataset::Ddi;
    let profile = dataset.profile(7);
    let build = |gopim: bool| -> GcnWorkload {
        let options = WorkloadOptions {
            mapping: if gopim {
                MappingKind::Interleaved
            } else {
                MappingKind::IndexBased
            },
            selective: gopim.then(|| SelectivePolicy::adaptive(&profile)),
            params: params.clone(),
            ..WorkloadOptions::default()
        };
        GcnWorkload::build_custom(dataset.name(), &profile, &dataset.model(), &options)
    };

    let serial_wl = build(false);
    let serial_plan = AllocPlan::serial(serial_wl.stages().len());
    let serial = simulate(
        &serial_wl,
        &serial_plan.replicas,
        &PipelineOptions::serial(),
    );

    let wl = build(true);
    let n_mb = wl.num_microbatches();
    let input = AllocInput {
        compute_ns: wl.stages().iter().map(|s| s.compute_ns).collect(),
        write_ns: (0..wl.stages().len())
            .map(|i| {
                (0..n_mb).map(|j| wl.write_ns(i, j)).sum::<f64>() / n_mb as f64 + wl.overhead_ns()
            })
            .collect(),
        quantum_ns: vec![spec.mvm_latency_ns(); wl.stages().len()],
        crossbars_per_replica: wl
            .stages()
            .iter()
            .map(|s| s.crossbars_per_replica)
            .collect(),
        unused_crossbars: total.saturating_sub(wl.base_crossbars()),
        num_microbatches: n_mb,
        max_replicas: None,
    };
    let plan = greedy_allocate(&input);
    let gopim = simulate(&wl, &plan.replicas, &PipelineOptions::default());
    (
        serial.makespan_ns / gopim.makespan_ns,
        gopim.makespan_ns / 1e3,
    )
}

fn main() {
    let _telemetry = gopim_bench::telemetry();
    let args = BenchArgs::from_env();
    banner(
        "Crossbar-size sweep (extension)",
        "GoPIM on ddi with 32x32 .. 256x256 crossbars at constant total ReRAM capacity\n\
         (crossbars/PE scaled inversely). The paper's 64x64 choice is the reference.",
    );
    let sizes: &[usize] = if args.quick {
        &[32, 64, 128]
    } else {
        &[32, 64, 128, 256]
    };
    // Each crossbar size is an independent end-to-end simulation.
    let results = gopim_par::par_map(sizes, |&s| run_at_size(s, s, args.budget));
    let rows: Vec<Vec<String>> = sizes
        .iter()
        .zip(&results)
        .map(|(&s, &(speedup, makespan_us))| {
            vec![
                format!("{s}x{s}"),
                report::speedup(speedup),
                format!("{makespan_us:.0} us"),
            ]
        })
        .collect();
    println!(
        "{}",
        report::table(
            &["crossbar size", "GoPIM speedup vs Serial", "GoPIM makespan"],
            &rows
        )
    );
}
