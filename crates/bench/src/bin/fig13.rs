//! Regenerates Fig. 13: end-to-end speedup (a) and normalized energy
//! (b) of all six systems on the headline datasets. Pass `--cora` to
//! add the §VII-F sparse-dataset run.

use gopim::experiments::fig13;
use gopim::report;
use gopim_bench::{banner, BenchArgs};
use gopim_graph::datasets::Dataset;

fn main() {
    let _telemetry = gopim_bench::telemetry();
    let args = BenchArgs::from_env();
    banner(
        "Fig. 13",
        "End-to-end comparison vs Serial. Paper averages: GoPIM 727.6x, SlimGNN-like\n\
         gap 2.1x, ReGraphX gap 2.4x, ReFlip gap 45.1x, Vanilla gap 1.5x; energy 4.0x.",
    );
    let mut datasets: Vec<Dataset> = if args.quick {
        vec![Dataset::Ddi, Dataset::Collab]
    } else {
        Dataset::HEADLINE.to_vec()
    };
    if args.rest.iter().any(|a| a == "--cora") {
        datasets.push(Dataset::Cora);
    }
    let rows = fig13::run(&args.run_config(), &datasets);
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.dataset.clone(),
                r.system.clone(),
                report::time_ns(r.makespan_ns),
                report::speedup(r.speedup),
                format!("{:.2}x", r.energy_saving),
            ]
        })
        .collect();
    println!(
        "{}",
        report::table(
            &["dataset", "system", "exec time", "speedup", "energy saving"],
            &table_rows
        )
    );

    // Summary: GoPIM's gap over each baseline (the paper's headline).
    for baseline in [
        "Serial",
        "SlimGNN-like",
        "ReGraphX",
        "ReFlip",
        "GoPIM-Vanilla",
    ] {
        let gaps: Vec<f64> = datasets
            .iter()
            .map(|d| {
                let g = fig13::cell(&rows, d.name(), "GoPIM").makespan_ns;
                let b = fig13::cell(&rows, d.name(), baseline).makespan_ns;
                b / g
            })
            .collect();
        let geo = gaps.iter().map(|g| g.ln()).sum::<f64>() / gaps.len() as f64;
        println!(
            "GoPIM vs {baseline:>14}: geomean {:.1}x (range {:.1}x-{:.1}x)",
            geo.exp(),
            gaps.iter().cloned().fold(f64::INFINITY, f64::min),
            gaps.iter().cloned().fold(0.0, f64::max),
        );
    }
}
