//! Regenerates Fig. 15: per-stage idle time, Naive vs GoPIM, at
//! micro-batch sizes 32/64/128 on ddi.

use gopim::experiments::fig15;
use gopim::report;
use gopim_bench::{banner, BenchArgs};
use gopim_graph::datasets::Dataset;

fn main() {
    let _telemetry = gopim_bench::telemetry();
    let args = BenchArgs::from_env();
    banner(
        "Fig. 15",
        "Idle time of crossbar groups, Naive (pipelined, index-mapped, no replicas)\n\
         vs GoPIM, on ddi. Paper: average reductions 46.75/49.75/51.75% at B=32/64/128.",
    );
    let sizes: &[usize] = if args.quick {
        &[32, 64]
    } else {
        &[32, 64, 128]
    };
    let rows = fig15::run(&args.run_config(), Dataset::Ddi, sizes);
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.micro_batch.to_string(),
                r.system.clone(),
                r.stage.clone(),
                report::percent(r.idle_fraction),
            ]
        })
        .collect();
    println!(
        "{}",
        report::table(
            &["micro-batch", "system", "group", "idle time"],
            &table_rows
        )
    );
    for &b in sizes {
        println!(
            "B={b}: mean idle reduction {} (paper ~46-52 points)",
            report::percent(fig15::mean_reduction(&rows, b))
        );
    }
}
