//! Regenerates Table VI: crossbar allocation details on ddi — replica
//! and crossbar counts per stage, Serial vs GoPIM.

use gopim::experiments::table06;
use gopim::report;
use gopim_bench::{banner, BenchArgs};
use gopim_graph::datasets::Dataset;

fn main() {
    let _telemetry = gopim_bench::telemetry();
    let args = BenchArgs::from_env();
    banner(
        "Table VI",
        "Crossbar allocation on ddi. Paper: Serial [1×8 replicas, 2264 crossbars];\n\
         GoPIM [59,364,60,616,61,487,61,484] replicas, 1,046,852 crossbars.",
    );
    let details = table06::run(&args.run_config(), Dataset::Ddi);
    for d in &details {
        println!("{}:", d.system);
        let rows: Vec<Vec<String>> = d
            .stage_names
            .iter()
            .zip(&d.replicas)
            .zip(&d.crossbars)
            .map(|((name, &r), &x)| vec![name.clone(), r.to_string(), x.to_string()])
            .collect();
        println!(
            "{}",
            report::table(&["stage", "replicas", "crossbars"], &rows)
        );
        println!("total crossbars: {}\n", d.total);
    }
}
