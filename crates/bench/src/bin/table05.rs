//! Regenerates Table V: the accuracy impact of ISU — GoPIM vs
//! GoPIM-Vanilla on the headline datasets' numeric stand-ins.

use gopim::experiments::table05;
use gopim::report;
use gopim_bench::{banner, BenchArgs};
use gopim_gcn::train::TrainOptions;
use gopim_graph::datasets::Dataset;

fn main() {
    let _telemetry = gopim_bench::telemetry();
    let args = BenchArgs::from_env();
    banner(
        "Table V",
        "Accuracy impact of ISU at the adaptive θ. Paper deltas: ddi +4.01, collab\n\
         -0.65, ppa +1.07, proteins +1.62, arxiv -0.20 percentage points.",
    );
    let datasets: Vec<Dataset> = if args.quick {
        vec![Dataset::Ddi, Dataset::Cora]
    } else {
        Dataset::HEADLINE.to_vec()
    };
    let options = if args.quick {
        TrainOptions::quick_test()
    } else {
        TrainOptions::experiment()
    };
    let seeds: &[u64] = if args.quick { &[23] } else { &[23, 29, 31] };
    let rows = table05::run_multi_seed(&datasets, args.scaled(1200, 250), &options, seeds);
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.dataset.clone(),
                report::percent(r.vanilla),
                report::percent(r.gopim),
                format!("{:+.2} ± {:.2} pp", r.delta_pp, r.delta_std_pp),
                format!("{:.0}%", r.theta * 100.0),
            ]
        })
        .collect();
    println!(
        "{}",
        report::table(
            &[
                "dataset",
                "GoPIM-Vanilla",
                "GoPIM",
                "acc impact",
                "adaptive θ"
            ],
            &table_rows
        )
    );
}
