//! Shape check: runs the reproduction's experiments and verifies every
//! *qualitative* claim of the paper programmatically — who wins, in
//! which direction trends go, where the extremes sit. This is the
//! acceptance test for the reproduction (EXPERIMENTS.md is its prose
//! counterpart).

use gopim::experiments::{fig13, fig15, fig16, table06};
use gopim::paper;
use gopim::runner::run_system;
use gopim::system::System;
use gopim_bench::{banner, BenchArgs};
use gopim_gcn::train::TrainOptions;
use gopim_graph::datasets::Dataset;
use gopim_pipeline::{GcnWorkload, WorkloadOptions};

struct Checker {
    rows: Vec<(String, bool, String)>,
}

impl Checker {
    fn new() -> Self {
        Checker { rows: Vec::new() }
    }

    fn check(&mut self, claim: &str, ok: bool, detail: String) {
        self.rows.push((claim.to_string(), ok, detail));
    }

    fn finish(self) -> bool {
        let mut all_ok = true;
        for (claim, ok, detail) in &self.rows {
            println!("[{}] {claim}", if *ok { "PASS" } else { "FAIL" });
            println!("       {detail}");
            all_ok &= ok;
        }
        println!();
        let passed = self.rows.iter().filter(|r| r.1).count();
        println!("{passed}/{} shape checks passed", self.rows.len());
        all_ok
    }
}

fn main() {
    let _telemetry = gopim_bench::telemetry();
    let args = BenchArgs::from_env();
    banner(
        "Shape check",
        "Programmatic verification of the paper's qualitative claims against this\n\
         reproduction. Every check names the paper source it encodes.",
    );
    let config = args.run_config();
    let mut c = Checker::new();

    // --- §III-A / Fig. 4: stage-time skew and CO idleness. ---
    let wl = GcnWorkload::build(Dataset::Ddi, &WorkloadOptions::default());
    let ratio = wl.stages()[1].compute_ns / wl.stages()[0].compute_ns;
    c.check(
        "SIII-A: Aggregation dwarfs Combination (paper avg 247x, max 888x)",
        ratio > 40.0,
        format!("ddi AG1/CO1 compute ratio {ratio:.0}x"),
    );
    let slim = run_system(Dataset::Ddi, System::SlimGnnLike, &config);
    let co_idle = slim.schedule.stages[0].idle_fraction;
    c.check(
        "Fig. 4: Combination crossbars idle >90% under a plain pipeline (paper 97.5-99%)",
        co_idle > 0.9,
        format!(
            "ddi CO1 crossbar idle {:.1}% (paper {:?}%)",
            co_idle * 100.0,
            paper::FIG04_CO_IDLE_PERCENT
        ),
    );

    // --- Fig. 13: system ordering, per dataset. ---
    let datasets: Vec<Dataset> = if args.quick {
        vec![Dataset::Ddi, Dataset::Cora]
    } else {
        let mut d = Dataset::HEADLINE.to_vec();
        d.push(Dataset::Cora);
        d
    };
    let rows = fig13::run(&config, &datasets);
    let gopim_wins = datasets.iter().all(|d| {
        let g = fig13::cell(&rows, d.name(), "GoPIM").makespan_ns;
        [
            "Serial",
            "SlimGNN-like",
            "ReGraphX",
            "ReFlip",
            "GoPIM-Vanilla",
        ]
        .iter()
        .all(|s| fig13::cell(&rows, d.name(), s).makespan_ns >= g)
    });
    c.check(
        "Fig. 13(a): GoPIM is fastest on every dataset",
        gopim_wins,
        format!("checked {} datasets", datasets.len()),
    );
    let ddi_speedup = fig13::cell(&rows, "ddi", "GoPIM").speedup;
    let max_speedup = datasets
        .iter()
        .map(|d| fig13::cell(&rows, d.name(), "GoPIM").speedup)
        .fold(0.0, f64::max);
    c.check(
        "Fig. 13(a): the smallest dataset (ddi) shows among the largest speedups",
        ddi_speedup >= 0.5 * max_speedup,
        format!("ddi {ddi_speedup:.0}x vs max {max_speedup:.0}x (paper: ddi is the 3454x maximum)"),
    );
    let reflip_worst_energy = datasets.iter().all(|d| {
        let reflip = fig13::cell(&rows, d.name(), "ReFlip").energy_saving;
        ["SlimGNN-like", "ReGraphX", "GoPIM-Vanilla", "GoPIM"]
            .iter()
            .all(|s| fig13::cell(&rows, d.name(), s).energy_saving >= reflip)
    });
    c.check(
        "Fig. 13(b): ReFlip is the least energy-efficient system (paper: worse than Serial on dense graphs)",
        reflip_worst_energy,
        "ReFlip's repeated source-vertex loading burns writes".to_string(),
    );
    let gopim_saves = datasets
        .iter()
        .all(|d| fig13::cell(&rows, d.name(), "GoPIM").energy_saving > 1.0);
    c.check(
        "Fig. 13(b): GoPIM saves energy vs Serial everywhere (paper avg 4.0x)",
        gopim_saves,
        format!(
            "savings: {}",
            datasets
                .iter()
                .map(|d| format!(
                    "{} {:.1}x",
                    d.name(),
                    fig13::cell(&rows, d.name(), "GoPIM").energy_saving
                ))
                .collect::<Vec<_>>()
                .join(", ")
        ),
    );

    // --- Fig. 15: idle reductions at every micro-batch size. ---
    let sizes = [32usize, 64, 128];
    let idle_rows = fig15::run(&config, Dataset::Ddi, &sizes);
    let reductions: Vec<f64> = sizes
        .iter()
        .map(|&b| fig15::mean_reduction(&idle_rows, b) * 100.0)
        .collect();
    c.check(
        "Fig. 15: GoPIM cuts mean idle time by tens of points at B=32/64/128 (paper 46.75/49.75/51.75)",
        reductions.iter().all(|&r| r > 15.0),
        format!("our reductions: {:.1}/{:.1}/{:.1} points", reductions[0], reductions[1], reductions[2]),
    );

    // --- Fig. 16(c): speedup grows with micro-batch size. ---
    let batch_rows = fig16::batch_sweep(&config, Dataset::Ddi, &[16, 64, 256]);
    c.check(
        "Fig. 16(c): speedup grows with micro-batch size",
        batch_rows[2].speedup > batch_rows[0].speedup,
        format!(
            "B=16: {:.0}x, B=64: {:.0}x, B=256: {:.0}x",
            batch_rows[0].speedup, batch_rows[1].speedup, batch_rows[2].speedup
        ),
    );

    // --- Fig. 16(a)/(b): the adaptive rule. ---
    let theta_options = if args.quick {
        TrainOptions::quick_test()
    } else {
        TrainOptions::experiment()
    };
    let sweep = fig16::theta_sweep(
        Dataset::Cora,
        &[0.2, 0.8],
        args.scaled(800, 250),
        &theta_options,
        17,
    );
    c.check(
        "Fig. 16(b): sparse graphs need a high theta (80% beats 20%)",
        sweep[1].test_accuracy >= sweep[0].test_accuracy - 0.02,
        format!(
            "Cora accuracy at theta=20%: {:.1}%, at 80%: {:.1}%",
            sweep[0].test_accuracy * 100.0,
            sweep[1].test_accuracy * 100.0
        ),
    );

    // --- Table VI: allocation concentrates on feature stages. ---
    let details = table06::run(&config, Dataset::Ddi);
    let gopim_detail = &details[1];
    let feature_heavy = gopim_detail.replicas[1] > 5 * gopim_detail.replicas[0];
    c.check(
        "Table VI: AG stages get far more replicas than CO stages (paper 364-616 vs 59-61)",
        feature_heavy,
        format!(
            "our replicas {:?} (paper {:?})",
            gopim_detail.replicas,
            paper::TABLE6.gopim_replicas
        ),
    );
    if !args.quick {
        // Only meaningful at the paper's full 16 GB budget.
        let total_ratio = gopim_detail.total as f64 / paper::TABLE6.gopim_total as f64;
        c.check(
            "Table VI: total crossbars within 2x of the paper's 1,046,852",
            (0.5..2.0).contains(&total_ratio),
            format!(
                "our total {} ({:.2}x of paper)",
                gopim_detail.total, total_ratio
            ),
        );
    }

    // --- Scalability (Fig. 17(b) direction). ---
    if !args.quick {
        let products = run_system(Dataset::Products, System::Gopim, &config);
        let products_serial = run_system(Dataset::Products, System::Serial, &config);
        let products_speedup = products_serial.makespan_ns / products.makespan_ns;
        c.check(
            "Fig. 17(b): products shows the smallest GoPIM speedup (paper 5.9x vs 3454x on ddi)",
            products_speedup < ddi_speedup,
            format!("products {products_speedup:.0}x vs ddi {ddi_speedup:.0}x"),
        );
    }

    let ok = c.finish();
    if !ok {
        std::process::exit(1);
    }
}
