//! Model-sensitivity ablation (reproduction extension, not a paper
//! figure).
//!
//! The analytic latency model has three calibrated constants that the
//! paper's NeuroSim setup fixes implicitly: the per-group aggregation
//! issue cost, the per-edge streaming cost, and the per-micro-batch
//! dispatch overhead. This binary sweeps each across a 4× range and
//! reports the headline conclusion (GoPIM's speedup over Serial and
//! over the strongest baseline) at every point — showing the paper's
//! qualitative result does not hinge on the calibration.

use gopim::report;
use gopim::runner::RunConfig;
use gopim_bench::{banner, BenchArgs};
use gopim_graph::datasets::Dataset;
use gopim_pipeline::latency::LatencyParams;

/// Runs ddi with modified latency parameters and reports speedups.
fn run_with(params: LatencyParams, config: &RunConfig) -> (f64, f64) {
    // Reuse the runner by rebuilding workloads through a modified
    // RunConfig is not possible (params live in WorkloadOptions), so we
    // drive the pieces directly.
    use gopim_alloc::{greedy_allocate, AllocInput, AllocPlan};
    use gopim_mapping::SelectivePolicy;
    use gopim_pipeline::energy::energy_of_run;
    use gopim_pipeline::{simulate, GcnWorkload, MappingKind, PipelineOptions, WorkloadOptions};
    use gopim_reram::spec::AcceleratorSpec;

    let dataset = Dataset::Ddi;
    let profile = dataset.profile(config.profile_seed);
    let spec = AcceleratorSpec::paper();
    let total = config
        .crossbar_budget
        .unwrap_or_else(|| spec.total_crossbars());

    let build = |gopim: bool| -> GcnWorkload {
        let options = WorkloadOptions {
            micro_batch: config.micro_batch,
            mapping: if gopim {
                MappingKind::Interleaved
            } else {
                MappingKind::IndexBased
            },
            selective: gopim.then(|| SelectivePolicy::adaptive(&profile)),
            accounting: gopim_pipeline::workload::UpdateAccounting::Amortized,
            params: params.clone(),
            repeated_load_rows_per_edge: 0.0,
            profile_seed: config.profile_seed,
        };
        GcnWorkload::build_custom(dataset.name(), &profile, &dataset.model(), &options)
    };

    let serial_wl = build(false);
    let serial_plan = AllocPlan::serial(serial_wl.stages().len());
    let serial = simulate(
        &serial_wl,
        &serial_plan.replicas,
        &PipelineOptions::serial(),
    );

    // Strongest baseline under this calibration: uniform replicas
    // (SlimGNN-like) with intra-batch pipelining.
    let mk_input = |wl: &GcnWorkload| -> AllocInput {
        let n_mb = wl.num_microbatches();
        AllocInput {
            compute_ns: wl.stages().iter().map(|s| s.compute_ns).collect(),
            write_ns: (0..wl.stages().len())
                .map(|i| {
                    (0..n_mb).map(|j| wl.write_ns(i, j)).sum::<f64>() / n_mb as f64
                        + wl.overhead_ns()
                })
                .collect(),
            quantum_ns: vec![params.spec.mvm_latency_ns(); wl.stages().len()],
            crossbars_per_replica: wl
                .stages()
                .iter()
                .map(|s| s.crossbars_per_replica)
                .collect(),
            unused_crossbars: total.saturating_sub(wl.base_crossbars()),
            num_microbatches: n_mb,
            max_replicas: None,
        }
    };
    let baseline_wl = build(false);
    let baseline_plan = gopim_alloc::fixed::uniform(&mk_input(&baseline_wl));
    let baseline = simulate(
        &baseline_wl,
        &baseline_plan.replicas,
        &PipelineOptions::intra_only(),
    );

    let gopim_wl = build(true);
    let gopim_plan = greedy_allocate(&mk_input(&gopim_wl));
    let gopim = simulate(&gopim_wl, &gopim_plan.replicas, &PipelineOptions::default());
    let _ = energy_of_run(&params.spec, &gopim_wl, &gopim_plan.replicas, &gopim, 1);

    (
        serial.makespan_ns / gopim.makespan_ns,
        baseline.makespan_ns / gopim.makespan_ns,
    )
}

fn main() {
    let _telemetry = gopim_bench::telemetry();
    let args = BenchArgs::from_env();
    banner(
        "Ablation (extension)",
        "Sensitivity of the headline result to the three calibrated latency\n\
         constants, swept 0.5x-2x on ddi. The qualitative conclusion (GoPIM > all)\n\
         must hold at every point.",
    );
    let config = args.run_config();
    let base = LatencyParams::paper();
    type Knob = Box<dyn Fn(f64) -> LatencyParams>;
    let knobs: Vec<(&str, Knob)> = vec![
        (
            "group_issue_ns",
            Box::new(|f| LatencyParams {
                group_issue_ns: f * LatencyParams::paper().group_issue_ns,
                ..LatencyParams::paper()
            }),
        ),
        (
            "edge_stream_ns",
            Box::new(|f| LatencyParams {
                edge_stream_ns: f * LatencyParams::paper().edge_stream_ns,
                ..LatencyParams::paper()
            }),
        ),
        (
            "microbatch_overhead_ns",
            Box::new(|f| LatencyParams {
                microbatch_overhead_ns: f * LatencyParams::paper().microbatch_overhead_ns,
                ..LatencyParams::paper()
            }),
        ),
    ];
    let factors = [0.5, 1.0, 2.0];
    let mut rows = Vec::new();
    for (name, make) in &knobs {
        for &f in &factors {
            let (vs_serial, vs_baseline) = run_with(make(f), &config);
            rows.push(vec![
                name.to_string(),
                format!("{f:.1}x"),
                report::speedup(vs_serial),
                format!("{vs_baseline:.2}x"),
            ]);
            assert!(
                vs_baseline > 1.0,
                "conclusion violated at {name} x{f}: GoPIM only {vs_baseline}x vs baseline"
            );
        }
    }
    let _ = base;
    println!(
        "{}",
        report::table(
            &[
                "knob",
                "factor",
                "GoPIM vs Serial",
                "GoPIM vs best baseline"
            ],
            &rows
        )
    );
    println!("All points keep GoPIM ahead of the strongest baseline.");
}
