//! Regenerates Fig. 14: the technique ablation — Serial → +PP → +ISU →
//! GoPIM, execution time and energy.

use gopim::experiments::fig14;
use gopim::report;
use gopim_bench::{banner, BenchArgs};
use gopim_graph::datasets::Dataset;

fn main() {
    let _telemetry = gopim_bench::telemetry();
    let args = BenchArgs::from_env();
    banner(
        "Fig. 14",
        "Impact of individual techniques. Paper: +PP up to 2.6x on ddi; energy\n\
         reductions up to 62% (+PP), 75% (+ISU), 79% (GoPIM).",
    );
    let datasets: Vec<Dataset> = if args.quick {
        vec![Dataset::Ddi]
    } else {
        Dataset::HEADLINE.to_vec()
    };
    let rows = fig14::run(&args.run_config(), &datasets);
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.dataset.clone(),
                r.variant.clone(),
                report::time_ns(r.makespan_ns),
                report::speedup(r.speedup),
                report::percent(r.energy_reduction),
            ]
        })
        .collect();
    println!(
        "{}",
        report::table(
            &[
                "dataset",
                "variant",
                "exec time",
                "speedup",
                "energy reduction"
            ],
            &table_rows
        )
    );
}
