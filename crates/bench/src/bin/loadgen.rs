//! Load generator for the gopim-serve job server.
//!
//! Spawns an in-process server on an ephemeral port (or targets an
//! external one via `--addr`), hammers it with a seeded mix of
//! simulation / sweep / ablation / allocation / prediction jobs from
//! N client threads, and reports client-observed and server-side
//! latency quantiles (p50/p95/p99) from the `gopim-obs` registry.
//!
//! ```text
//! cargo run --release -p gopim-bench --bin loadgen            # 1000 jobs, 8 clients
//! cargo run --release -p gopim-bench --bin loadgen -- --quick # CI-sized smoke
//! cargo run ... -- --jobs 5000 --clients 16 --addr host:4857  # external server
//! ```
//!
//! The job mix deliberately repeats request tuples: a serving workload
//! is dominated by repeated configurations, and the canonical-hash
//! cache should absorb them. The final line reports how many jobs the
//! cache served.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use gopim::jobs::{CoreJobHandler, JobConfig, JobRequest};
use gopim::report;
use gopim::system::{Ablation, System};
use gopim_bench::{banner, BenchArgs};
use gopim_cache::CacheValue;
use gopim_graph::datasets::Dataset;
use gopim_obs::metrics::LazyHistogram;
use gopim_rng::rngs::SmallRng;
use gopim_rng::{Rng, SeedableRng};
use gopim_serve::{Client, Response, Server, ServerConfig};

static CLIENT_LATENCY: LazyHistogram = LazyHistogram::new("loadgen.latency_ns");

/// The seeded job mix: small datasets only (the point is scheduler and
/// protocol throughput, not simulation scale), heavy key repetition.
fn make_job(rng: &mut SmallRng, quick: bool) -> JobRequest {
    let datasets = [Dataset::Ddi, Dataset::Cora];
    let systems = [System::Serial, System::GopimVanilla, System::Gopim];
    let dataset = datasets[rng.gen_range(0..datasets.len())];
    let system = systems[rng.gen_range(0..systems.len())];
    // A handful of seeds bounds the distinct-key universe, so most
    // jobs repeat an earlier tuple and exercise the cache path.
    let seeds: u64 = if quick { 2 } else { 4 };
    let config = JobConfig {
        crossbar_budget: Some(300_000),
        profile_seed: 7 + rng.gen_range(0..seeds),
        ..JobConfig::default()
    };
    match rng.gen_range(0..10u32) {
        // Simulation dominates the mix, as it would in production.
        0..=4 => JobRequest::Simulate {
            dataset,
            system,
            config,
        },
        5 => JobRequest::Sweep {
            cells: vec![(dataset, System::Serial), (dataset, System::Gopim)],
            config,
        },
        6 => JobRequest::Ablation {
            dataset,
            variant: Ablation::ALL[rng.gen_range(0..Ablation::ALL.len())],
            config,
        },
        7..=8 => JobRequest::Allocate {
            dataset,
            system,
            config,
        },
        _ => JobRequest::Predict {
            dataset,
            system,
            config,
        },
    }
}

struct Outcome {
    done: AtomicU64,
    cache_served: AtomicU64,
    busy: AtomicU64,
    failed: AtomicU64,
    other: AtomicU64,
}

fn client_thread(
    addr: String,
    client_id: usize,
    jobs: u64,
    quick: bool,
    outcome: Arc<Outcome>,
) -> Result<(), String> {
    let mut client = Client::connect(&addr, &format!("loadgen-{client_id}"))
        .map_err(|e| format!("client {client_id}: connect: {e}"))?;
    client
        .set_recv_timeout(Some(Duration::from_secs(120)))
        .map_err(|e| format!("client {client_id}: timeout: {e}"))?;
    let mut rng = SmallRng::seed_from_u64(0x10ad_0000 + client_id as u64);
    for j in 0..jobs {
        let job = make_job(&mut rng, quick);
        let payload = job.to_bytes();
        let start = Instant::now();
        let mut attempts = 0u32;
        loop {
            let reply = client
                .submit_blocking(j, 0, payload.clone(), |_| {})
                .map_err(|e| format!("client {client_id} job {j}: {e}"))?;
            match reply {
                Response::Done { cache_served, .. } => {
                    CLIENT_LATENCY.record_ns(start.elapsed().as_nanos() as f64);
                    outcome.done.fetch_add(1, Ordering::Relaxed);
                    if cache_served {
                        outcome.cache_served.fetch_add(1, Ordering::Relaxed);
                    }
                    break;
                }
                Response::Busy { .. } => {
                    // Admission backpressure: back off and retry the
                    // same job (bounded so a wedged server fails loud).
                    outcome.busy.fetch_add(1, Ordering::Relaxed);
                    attempts += 1;
                    if attempts > 1000 {
                        return Err(format!("client {client_id}: busy-looped on job {j}"));
                    }
                    std::thread::sleep(Duration::from_millis(2 * u64::from(attempts.min(25))));
                }
                Response::Failed { message, .. } => {
                    outcome.failed.fetch_add(1, Ordering::Relaxed);
                    return Err(format!("client {client_id} job {j} failed: {message}"));
                }
                other => {
                    outcome.other.fetch_add(1, Ordering::Relaxed);
                    return Err(format!("client {client_id} job {j}: unexpected {other:?}"));
                }
            }
        }
    }
    Ok(())
}

fn main() {
    let _telemetry = gopim_bench::telemetry();
    // Quantile reporting needs the registry regardless of GOPIM_METRICS.
    gopim_obs::set_metrics_enabled(true);
    let args = BenchArgs::from_env();
    let mut jobs_total: u64 = if args.quick { 120 } else { 1000 };
    let mut clients: usize = if args.quick { 4 } else { 8 };
    let mut addr_override: Option<String> = None;
    let mut rest = args.rest.iter();
    while let Some(arg) = rest.next() {
        match arg.as_str() {
            "--jobs" => {
                jobs_total = rest
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(jobs_total)
            }
            "--clients" => {
                clients = rest
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&c| c > 0)
                    .unwrap_or(clients)
            }
            "--addr" => addr_override = rest.next().cloned(),
            other => {
                eprintln!("loadgen: unknown argument '{other}'");
                std::process::exit(2);
            }
        }
    }
    banner(
        "loadgen",
        "Serve-layer load generator: mixed simulation/allocation/prediction jobs\n\
         over the wire protocol, fair-share scheduled, cache-backed.",
    );

    // In-process server on an ephemeral port unless --addr points at
    // an external one.
    let server = if addr_override.is_none() {
        let cfg = ServerConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get().min(4))
                .unwrap_or(2),
            max_queue: 64,
            ..ServerConfig::from_env()
        };
        Some(
            Server::bind("127.0.0.1:0", Arc::new(CoreJobHandler), cfg).unwrap_or_else(|e| {
                eprintln!("loadgen: bind: {e}");
                std::process::exit(1);
            }),
        )
    } else {
        None
    };
    let addr = addr_override.unwrap_or_else(|| {
        server
            .as_ref()
            .map(|s| s.local_addr().to_string())
            .unwrap_or_default()
    });
    println!(
        "target {addr} — {jobs_total} jobs across {clients} client thread(s){}",
        if args.quick { " [quick]" } else { "" }
    );

    let outcome = Arc::new(Outcome {
        done: AtomicU64::new(0),
        cache_served: AtomicU64::new(0),
        busy: AtomicU64::new(0),
        failed: AtomicU64::new(0),
        other: AtomicU64::new(0),
    });
    let per_client = jobs_total / clients as u64;
    let remainder = jobs_total % clients as u64;
    let wall = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let addr = addr.clone();
            let outcome = Arc::clone(&outcome);
            let quota = per_client + u64::from((c as u64) < remainder);
            std::thread::spawn(move || client_thread(addr, c, quota, args.quick, outcome))
        })
        .collect();
    let mut errors = Vec::new();
    for h in handles {
        match h.join() {
            Ok(Ok(())) => {}
            Ok(Err(e)) => errors.push(e),
            Err(_) => errors.push("client thread panicked".to_string()),
        }
    }
    let wall_s = wall.elapsed().as_secs_f64();

    // Server statistics over the wire, then a clean drain.
    let stats = Client::connect(&addr, "loadgen-stats")
        .ok()
        .and_then(|mut c| c.stats(|_| {}).ok());
    if let Some(server) = &server {
        // In-process server: drain directly (a protocol Shutdown would
        // race the stats reply on a shared listener).
        server.shutdown();
    }

    let snapshot = gopim_obs::metrics::global().snapshot();
    let quantiles = |name: &str| -> Option<(f64, f64, f64)> {
        let h = snapshot.histograms.get(name)?;
        Some((h.quantile(0.50), h.quantile(0.95), h.quantile(0.99)))
    };
    let mut rows: Vec<Vec<String>> = Vec::new();
    for (label, name) in [
        ("client latency", "loadgen.latency_ns"),
        ("server latency", "serve.latency_ns"),
        ("queue wait", "serve.wait_ns"),
        ("execution", "serve.exec_ns"),
    ] {
        if let Some((p50, p95, p99)) = quantiles(name) {
            rows.push(vec![
                label.to_string(),
                report::time_ns(p50),
                report::time_ns(p95),
                report::time_ns(p99),
            ]);
        }
    }
    println!("{}", report::table(&["metric", "p50", "p95", "p99"], &rows));

    let done = outcome.done.load(Ordering::Relaxed);
    let cache = outcome.cache_served.load(Ordering::Relaxed);
    let busy = outcome.busy.load(Ordering::Relaxed);
    println!(
        "{done}/{jobs_total} jobs done in {wall_s:.2}s ({:.0} jobs/s), {cache} cache-served \
         ({:.0}%), {busy} busy-backoff(s)",
        done as f64 / wall_s,
        100.0 * cache as f64 / done.max(1) as f64,
    );
    if let Some(s) = stats {
        println!(
            "server: {} submitted, {} completed, {} cache-served, {} busy-rejected, \
             {} cancelled, {} expired",
            s.submitted, s.completed, s.cache_served, s.busy_rejections, s.cancelled, s.expired
        );
    }
    if !errors.is_empty() {
        for e in &errors {
            eprintln!("loadgen: {e}");
        }
        std::process::exit(1);
    }
    if done != jobs_total {
        eprintln!("loadgen: only {done} of {jobs_total} jobs completed");
        std::process::exit(1);
    }
}
