//! Regenerates Fig. 9: Time-Predictor model selection — (a) regressor
//! families, (b) MLP depth 2–6, (c) hidden width sweep.

use gopim::experiments::fig09;
use gopim::report;
use gopim_bench::{banner, BenchArgs};
use gopim_predictor::dataset_gen::generate_samples;

fn main() {
    let _telemetry = gopim_bench::telemetry();
    let args = BenchArgs::from_env();
    banner(
        "Fig. 9",
        "RMSE of learning-based execution-time predictors (normalized log-time targets).\n\
         Paper: the MLP wins; 3 layers and 256 hidden neurons are best; RMSE ~0.0022.",
    );
    let samples = generate_samples(args.scaled(2200, 400), 42);
    gopim_obs::log_info!("training samples: {}", samples.len());
    let epochs = args.scaled(800, 40);

    println!("(a) model families:");
    let rows = fig09::model_comparison(&samples, epochs, 9);
    let mut sorted = rows.clone();
    sorted.sort_by(|a, b| a.rmse.partial_cmp(&b.rmse).unwrap());
    let table_rows: Vec<Vec<String>> = sorted
        .iter()
        .map(|r| vec![r.model.clone(), format!("{:.5}", r.rmse)])
        .collect();
    println!("{}", report::table(&["model", "RMSE"], &table_rows));

    println!("(b) MLP depth sweep (256 hidden):");
    let depth_rows =
        fig09::depth_sweep(&samples, &[2, 3, 4, 5, 6], args.scaled(256, 32), epochs, 9);
    let table_rows: Vec<Vec<String>> = depth_rows
        .iter()
        .map(|(d, r)| vec![format!("{d} layers"), format!("{r:.5}")])
        .collect();
    println!("{}", report::table(&["depth", "RMSE"], &table_rows));

    println!("(d, SV-A) feature ablation — RMSE with one Table I feature removed:");
    let ablation_epochs = args.scaled(150, 20);
    let full_rmse = rows
        .iter()
        .find(|r| r.model == "MLP")
        .map(|r| r.rmse)
        .unwrap_or(0.0);
    let ab_rows = fig09::feature_ablation(&samples, ablation_epochs, 9);
    let table_rows: Vec<Vec<String>> = ab_rows
        .iter()
        .map(|(name, r)| {
            vec![
                name.clone(),
                format!("{r:.5}"),
                format!("{:+.1}%", (r / full_rmse - 1.0) * 100.0),
            ]
        })
        .collect();
    println!(
        "{}",
        report::table(&["removed feature", "RMSE", "vs full set"], &table_rows)
    );

    println!("(c) hidden-width sweep (3 layers):");
    let widths: &[usize] = if args.quick {
        &[16, 64, 256]
    } else {
        &[32, 64, 128, 256, 512]
    };
    let width_rows = fig09::width_sweep(&samples, widths, epochs, 9);
    let table_rows: Vec<Vec<String>> = width_rows
        .iter()
        .map(|(w, r)| vec![format!("{w} neurons"), format!("{r:.5}")])
        .collect();
    println!("{}", report::table(&["hidden width", "RMSE"], &table_rows));
}
