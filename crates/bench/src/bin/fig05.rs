//! Regenerates Fig. 5: the worked resource-allocation example — two
//! stages with a 1:6 time ratio, three spare crossbars.
//!
//! (a) no replicas; (b) the ReGraphX-style fixed 1:2 split; (c) all
//! three replicas on the long stage (what GoPIM's allocator picks).

use gopim::report;
use gopim_alloc::{greedy_allocate, AllocInput};
use gopim_bench::{banner, BenchArgs};

fn main() {
    let _telemetry = gopim_bench::telemetry();
    let _args = BenchArgs::from_env();
    banner(
        "Fig. 5",
        "Two-stage toy pipeline (times 1:6), 3 spare crossbars, 1 crossbar per replica.\n\
         Paper: case (c) (everything to stage 2) beats the fixed 1:2 split of case (b).",
    );
    let input = AllocInput {
        compute_ns: vec![1.0, 6.0],
        write_ns: vec![0.0, 0.0],
        quantum_ns: vec![0.01, 0.01],
        crossbars_per_replica: vec![1, 1],
        unused_crossbars: 3,
        num_microbatches: 4,
        max_replicas: None,
    };
    let cases: Vec<(&str, Vec<usize>)> = vec![
        ("(a) no replicas", vec![1, 1]),
        ("(b) fixed 1:2 split (ReGraphX)", vec![2, 3]),
        ("(c) all to the long stage", vec![1, 4]),
        (
            "GoPIM greedy (Algorithm 1)",
            greedy_allocate(&input).replicas,
        ),
    ];
    let base = input.pipeline_time(&[1, 1]);
    let rows: Vec<Vec<String>> = cases
        .iter()
        .map(|(name, replicas)| {
            let t = input.pipeline_time(replicas);
            vec![
                name.to_string(),
                format!("{replicas:?}"),
                format!("{t:.2} units"),
                report::percent(1.0 - t / base),
            ]
        })
        .collect();
    println!(
        "{}",
        report::table(&["case", "replicas", "pipeline time", "improvement"], &rows)
    );
    println!("Paper reports improvements of ~65.4% for (b) and ~69.2% for (c).");
}
