//! Regenerates Fig. 17: (a) speedup vs vertex-feature dimension
//! (256→2048), (b) scalability on the full-size products dataset.

use gopim::experiments::fig17;
use gopim::report;
use gopim_bench::{banner, BenchArgs};

fn main() {
    let _telemetry = gopim_bench::telemetry();
    let args = BenchArgs::from_env();
    banner(
        "Fig. 17",
        "Scalability. Paper: speedups persist but taper as dimensions grow;\n\
         products: 5.9x speedup and 1.8x energy saving over Serial.",
    );
    println!("(a) GoPIM speedup vs vertex-feature dimension (ddi-like graph):");
    let dims: &[usize] = if args.quick {
        &[256, 512]
    } else {
        &[256, 512, 1024, 2048, 4096, 8192]
    };
    let rows = fig17::dimension_sweep(&args.run_config(), dims);
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| vec![r.dimension.to_string(), report::speedup(r.speedup)])
        .collect();
    println!(
        "{}",
        report::table(&["feature dim", "speedup vs Serial"], &table_rows)
    );

    if args.quick {
        println!("(b) skipped in --quick mode (full-size products run).");
        return;
    }
    println!("(b) products (2,449,029 vertices):");
    let rows = fig17::products_run(&args.run_config());
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.system.clone(),
                report::speedup(r.speedup),
                format!("{:.2}x", r.energy_saving),
            ]
        })
        .collect();
    println!(
        "{}",
        report::table(&["system", "speedup", "energy saving"], &table_rows)
    );

    println!("(c, extension) products speedup vs chip count (SVII-F: 'augmenting the");
    println!("crossbar resources' recovers big-graph speedups):");
    let rows = fig17::budget_sweep(
        &args.run_config(),
        gopim_graph::datasets::Dataset::Products,
        &[1.0, 2.0, 4.0],
    );
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| vec![format!("{:.0}x 16GB", r.chips), report::speedup(r.speedup)])
        .collect();
    println!(
        "{}",
        report::table(&["chips", "speedup vs Serial"], &table_rows)
    );
}
