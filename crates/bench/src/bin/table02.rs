//! Regenerates Table II: the ReRAM accelerator configuration — the
//! published component catalog plus the quantities this reproduction
//! derives from it (cycle counts, capacity, area composition, NoC).

use gopim::report;
use gopim_bench::{banner, BenchArgs};
use gopim_reram::area::area_breakdown;
use gopim_reram::energy::EnergyModel;
use gopim_reram::noc::MeshNoc;
use gopim_reram::spec::AcceleratorSpec;

fn main() {
    let _telemetry = gopim_bench::telemetry();
    let _args = BenchArgs::from_env();
    banner(
        "Table II",
        "Specifications of the ReRAM-based accelerator simulator (published values\n\
         and the quantities derived from them).",
    );
    let spec = AcceleratorSpec::paper();

    println!("published configuration:");
    let rows = vec![
        vec![
            "crossbar size".into(),
            format!("{}x{}", spec.crossbar_rows, spec.crossbar_cols),
        ],
        vec!["bits per cell".into(), spec.bits_per_cell.to_string()],
        vec![
            "value precision".into(),
            format!("{} bits", spec.value_bits),
        ],
        vec!["DAC resolution".into(), format!("{} bits", spec.dac_bits)],
        vec!["ADC resolution".into(), format!("{} bits", spec.adc_bits)],
        vec!["crossbars / PE".into(), spec.crossbars_per_pe.to_string()],
        vec!["PEs / tile".into(), spec.pes_per_tile.to_string()],
        vec!["tiles / chip".into(), spec.tiles_per_chip.to_string()],
        vec![
            "read latency".into(),
            format!("{} ns", spec.read_latency_ns),
        ],
        vec![
            "write latency".into(),
            format!("{} ns", spec.write_latency_ns),
        ],
    ];
    println!("{}", report::table(&["parameter", "value"], &rows));

    println!("derived quantities:");
    let area = area_breakdown(&spec);
    let energy = EnergyModel::new(&spec);
    let noc = MeshNoc::paper(&spec);
    let rows = vec![
        vec!["total crossbars".into(), spec.total_crossbars().to_string()],
        vec![
            "total ReRAM capacity".into(),
            format!("{} GiB", spec.total_bytes() / (1 << 30)),
        ],
        vec!["input cycles / MVM".into(), spec.input_cycles().to_string()],
        vec!["write cycles / row".into(), spec.write_cycles().to_string()],
        vec![
            "MVM issue latency".into(),
            format!("{:.1} ns", spec.mvm_latency_ns()),
        ],
        vec![
            "row program latency".into(),
            format!("{:.1} ns", spec.row_write_latency_ns()),
        ],
        vec!["PE area".into(), format!("{:.4} mm2", area.pe_mm2)],
        vec!["tile area".into(), format!("{:.3} mm2", area.tile_mm2)],
        vec!["chip area".into(), format!("{:.0} mm2", area.chip_mm2)],
        vec![
            "row write energy".into(),
            format!("{:.2} nJ", energy.row_write_energy_nj()),
        ],
        vec![
            "MVM issue energy / crossbar".into(),
            format!("{:.2} nJ", energy.mvm_energy_nj(1, 1)),
        ],
        vec!["NoC mesh".into(), format!("{0}x{0}", noc.side)],
        vec![
            "NoC sink service".into(),
            format!("{:.1} ns", noc.sink_service_ns()),
        ],
    ];
    println!("{}", report::table(&["quantity", "value"], &rows));
}
