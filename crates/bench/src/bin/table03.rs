//! Regenerates Table III (the dataset catalog) and Table IV (the GCN
//! model architectures), plus the statistics our synthetic stand-ins
//! actually realize — the check that the substitution (DESIGN.md §2)
//! reproduces the published numbers.

use gopim::report;
use gopim_bench::{banner, BenchArgs};
use gopim_graph::datasets::Dataset;

fn main() {
    let _telemetry = gopim_bench::telemetry();
    let args = BenchArgs::from_env();
    banner(
        "Table III / Table IV",
        "Dataset catalog, model configurations, and the realized statistics of the\n\
         synthetic stand-in profiles (vertex counts exact; degrees within a few %).\n\
         Note: the paper's edge counts follow the directed/raw-OGB convention; ours\n\
         are undirected edges consistent with N x avg_degree / 2.",
    );

    println!("Table III — datasets (published | realized by our generators):");
    let datasets: Vec<Dataset> = if args.quick {
        vec![Dataset::Ddi, Dataset::Cora]
    } else {
        Dataset::ALL.to_vec()
    };
    let rows: Vec<Vec<String>> = datasets
        .iter()
        .map(|&d| {
            let s = d.stats();
            let p = d.profile(7);
            let realized_edges = p.num_edges();
            vec![
                s.name.to_string(),
                format!("{:?}", s.task),
                s.num_vertices.to_string(),
                format!("{} | {}", s.num_edges, realized_edges),
                format!("{:.1} | {:.1}", s.avg_degree, p.avg_degree()),
                s.feature_dim.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        report::table(
            &[
                "dataset",
                "task",
                "vertices",
                "edges (paper | ours)",
                "avg deg (paper | ours)",
                "feat dim"
            ],
            &rows
        )
    );

    println!("Table IV — GCN architectures and training parameters:");
    let rows: Vec<Vec<String>> = datasets
        .iter()
        .map(|&d| {
            let m = d.model();
            vec![
                d.name().to_string(),
                m.num_layers.to_string(),
                m.learning_rate.to_string(),
                m.dropout.to_string(),
                m.input_channels.to_string(),
                m.hidden_channels.to_string(),
                m.output_channels.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        report::table(
            &["dataset", "layers", "lr", "dropout", "in", "hidden", "out"],
            &rows
        )
    );
}
