//! Minimal property-testing harness with stream-level shrinking.
//!
//! A property is a closure over a [`Draw`]: it pulls named random
//! values (`d.draw("n", 1..64)`, `d.vec("edges", 0..200, |d| …)`) and
//! asserts invariants with plain `assert!` / `assert_eq!`. The
//! harness runs it for a configurable number of cases, each seeded
//! deterministically from a base seed.
//!
//! **Shrinking** works on the recorded entropy stream rather than on
//! typed values (the Hypothesis approach): every draw consumes one
//! raw `u64`, and all draw-to-value mappings are monotone, so zeroing
//! /halving/truncating raw words moves every drawn value toward the
//! bottom of its range. When a case fails, the harness minimizes the
//! stream while the property keeps failing, then replays the minimal
//! stream once more with logging enabled and reports every named draw
//! of the minimal counterexample.
//!
//! **Replay** is deterministic by default: the base seed is a fixed
//! constant, so CI runs are reproducible. Environment overrides:
//!
//! - `GOPIM_PT_SEED` — base seed (decimal or `0x…` hex). A failure
//!   report prints the exact value to re-run with.
//! - `GOPIM_PT_CASES` — overrides the per-property case count.

use gopim_rng::{mix_seed, rngs::SmallRng, Rng, SampleRange, SeedableRng};
use std::fmt::Debug;
use std::panic::{self, AssertUnwindSafe};

/// Base seed used when `GOPIM_PT_SEED` is not set. Fixed so that
/// `cargo test` is deterministic run-to-run and machine-to-machine.
pub const DEFAULT_SEED: u64 = 0x60_91_4D_5E_ED_00_01;

/// Default number of cases per property when neither the property nor
/// `GOPIM_PT_CASES` says otherwise.
pub const DEFAULT_CASES: usize = 64;

/// Per-property configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of generated cases.
    pub cases: usize,
    /// Maximum property re-executions spent shrinking a failure.
    pub max_shrink_iters: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            cases: DEFAULT_CASES,
            max_shrink_iters: 1_000,
        }
    }
}

impl Config {
    /// A config with the given case count (the common override).
    pub fn cases(cases: usize) -> Self {
        Config {
            cases,
            ..Config::default()
        }
    }
}

fn env_seed() -> u64 {
    match std::env::var("GOPIM_PT_SEED") {
        Ok(s) => {
            let s = s.trim();
            let parsed = if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
                u64::from_str_radix(hex, 16)
            } else {
                s.parse()
            };
            // lint:allow(no-panic-in-lib): property harness aborts loudly on a malformed replay seed
            parsed.unwrap_or_else(|_| panic!("GOPIM_PT_SEED must be a u64, got {s:?}"))
        }
        Err(_) => DEFAULT_SEED,
    }
}

fn env_cases(default: usize) -> usize {
    match std::env::var("GOPIM_PT_CASES") {
        Ok(s) => s
            .trim()
            .parse()
            // lint:allow(no-panic-in-lib): property harness aborts loudly on a malformed case count
            .unwrap_or_else(|_| panic!("GOPIM_PT_CASES must be a usize, got {s:?}", s = s)),
        Err(_) => default,
    }
}

enum Mode {
    /// Fresh entropy from the PRNG, recording every word.
    Record(SmallRng),
    /// Replaying a recorded stream; draws past the end read 0 (which
    /// maps to the bottom of every range).
    Replay,
}

/// The value source handed to a property closure.
///
/// Every method takes a `name` used in failure reports; draws consume
/// one raw `u64` each from the underlying stream.
pub struct Draw {
    mode: Mode,
    stream: Vec<u64>,
    pos: usize,
    log: Option<Vec<(String, String)>>,
    log_suspended: usize,
}

/// Adapter exposing a [`Draw`]'s raw stream as a [`Rng`] so the range
/// reduction logic in `gopim-rng` can be reused verbatim.
struct RawRng<'a>(&'a mut Draw);

impl Rng for RawRng<'_> {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.0.raw()
    }
}

impl Draw {
    fn record(seed: u64) -> Self {
        Draw {
            mode: Mode::Record(SmallRng::seed_from_u64(seed)),
            stream: Vec::new(),
            pos: 0,
            log: None,
            log_suspended: 0,
        }
    }

    fn replay(stream: Vec<u64>, with_log: bool) -> Self {
        Draw {
            mode: Mode::Replay,
            stream,
            pos: 0,
            log: with_log.then(Vec::new),
            log_suspended: 0,
        }
    }

    #[inline]
    fn raw(&mut self) -> u64 {
        let v = match &mut self.mode {
            Mode::Record(rng) => {
                let v = rng.next_u64();
                self.stream.push(v);
                v
            }
            Mode::Replay => self.stream.get(self.pos).copied().unwrap_or(0),
        };
        self.pos += 1;
        v
    }

    fn note(&mut self, name: &str, value: &dyn Debug) {
        if self.log_suspended == 0 {
            if let Some(log) = &mut self.log {
                log.push((name.to_string(), format!("{value:?}")));
            }
        }
    }

    /// Draws one value uniformly from `range` (any integer or float
    /// range type supported by [`gopim_rng::SampleRange`]).
    pub fn draw<T: Debug, S: SampleRange<T>>(&mut self, name: &str, range: S) -> T {
        let v = range.sample_from(&mut RawRng(self));
        self.note(name, &v);
        v
    }

    /// Draws `true` with probability `p`. Shrinks toward `false`.
    pub fn bool_with(&mut self, name: &str, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "bool_with: p = {p} not in [0, 1]");
        // Raw 0 maps to false (unless p == 1), so stream shrinking
        // turns bools off.
        let unit = (self.raw() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let v = unit >= 1.0 - p;
        self.note(name, &v);
        v
    }

    /// Fair coin. Shrinks toward `false`.
    pub fn any_bool(&mut self, name: &str) -> bool {
        self.bool_with(name, 0.5)
    }

    /// Uniformly picks one of `options` (cloned). Shrinks toward the
    /// first option.
    pub fn pick<T: Clone + Debug>(&mut self, name: &str, options: &[T]) -> T {
        assert!(!options.is_empty(), "pick: no options");
        let i: usize = { 0..options.len() }.sample_from(&mut RawRng(self));
        let v = options[i].clone();
        self.note(name, &v);
        v
    }

    /// Draws a vector whose length is drawn from `len` and whose
    /// elements come from `elem`. Shrinks toward shorter vectors of
    /// smaller elements. The whole vector is logged under `name`;
    /// element-level draws are not logged individually.
    pub fn vec<T: Debug, S: SampleRange<usize>>(
        &mut self,
        name: &str,
        len: S,
        mut elem: impl FnMut(&mut Draw) -> T,
    ) -> Vec<T> {
        let n: usize = len.sample_from(&mut RawRng(self));
        self.log_suspended += 1;
        let v: Vec<T> = (0..n).map(|_| elem(self)).collect();
        self.log_suspended -= 1;
        self.note(name, &v);
        v
    }
}

/// Outcome of one property execution.
enum Run {
    Pass,
    Fail(String),
}

fn run_once(prop: &dyn Fn(&mut Draw), draw: &mut Draw) -> Run {
    let result = panic::catch_unwind(AssertUnwindSafe(|| prop(draw)));
    match result {
        Ok(()) => Run::Pass,
        Err(payload) => Run::Fail(panic_message(payload.as_ref())),
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| "<non-string panic payload>".to_string())
    }
}

fn fails(prop: &dyn Fn(&mut Draw), stream: &[u64]) -> bool {
    let mut draw = Draw::replay(stream.to_vec(), false);
    matches!(run_once(prop, &mut draw), Run::Fail(_))
}

/// Minimizes a failing stream in two phases: truncate the tail
/// (removing whole draws — replayed draws past the end read 0), then
/// binary-search each word down to the smallest value that still
/// fails. Draw-to-value mappings are monotone in the raw word, so
/// word minimization drives every drawn value to the bottom of the
/// failing region.
fn shrink(prop: &dyn Fn(&mut Draw), mut stream: Vec<u64>, budget: usize) -> Vec<u64> {
    let mut spent = 0;
    // Phase 1: truncations, coarsest first.
    'truncate: loop {
        let n = stream.len();
        for keep in [0, n / 4, n / 2, (3 * n) / 4, n.saturating_sub(1)] {
            if keep >= n || spent >= budget {
                break 'truncate;
            }
            let candidate = stream[..keep].to_vec();
            spent += 1;
            if fails(prop, &candidate) {
                stream = candidate;
                continue 'truncate;
            }
        }
        break;
    }
    // Phase 2: per-word minimization. The invariant throughout: the
    // current `stream` fails; `hi` is only ever assigned a value
    // verified failing with the rest of the stream fixed.
    for i in 0..stream.len() {
        if spent >= budget {
            break;
        }
        let original = stream[i];
        if original == 0 {
            continue;
        }
        stream[i] = 0;
        spent += 1;
        if fails(prop, &stream) {
            continue;
        }
        let (mut lo, mut hi) = (1u64, original);
        while lo < hi && spent < budget {
            let mid = lo + (hi - lo) / 2;
            stream[i] = mid;
            spent += 1;
            if fails(prop, &stream) {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        stream[i] = hi;
    }
    stream
}

/// Runs `prop` for [`Config::default`] cases. Panics with a shrunk,
/// named counterexample on failure.
pub fn check(name: &str, prop: impl Fn(&mut Draw)) {
    check_with(name, Config::default(), prop);
}

/// Runs `prop` under an explicit [`Config`].
pub fn check_with(name: &str, config: Config, prop: impl Fn(&mut Draw)) {
    let base_seed = env_seed();
    let cases = env_cases(config.cases);
    // Silence the per-case panic hook while probing/shrinking; the
    // final report goes through a fresh panic at the end.
    let hook = panic::take_hook();
    panic::set_hook(Box::new(|_| {}));
    let mut failure = None;
    for case in 0..cases {
        let case_seed = mix_seed(base_seed, case as u64);
        let mut draw = Draw::record(case_seed);
        if let Run::Fail(first_msg) = run_once(&prop, &mut draw) {
            let minimal = shrink(&prop, draw.stream, config.max_shrink_iters);
            // Replay the minimal stream once more, logging each named
            // draw for the report.
            let mut report_draw = Draw::replay(minimal, true);
            let final_msg = match run_once(&prop, &mut report_draw) {
                Run::Fail(m) => m,
                // The shrinker only keeps failing candidates, so this
                // replay must fail too; fall back defensively.
                Run::Pass => first_msg,
            };
            failure = Some((case, final_msg, report_draw.log.unwrap_or_default()));
            break;
        }
    }
    panic::set_hook(hook);
    if let Some((case, msg, log)) = failure {
        let mut lines = String::new();
        for (key, value) in &log {
            lines.push_str(&format!("    {key} = {value}\n"));
        }
        // lint:allow(no-panic-in-lib): panicking is how the property harness reports a counterexample to the test runner
        panic!(
            "property '{name}' failed at case {case}/{cases}\n  \
             minimal counterexample:\n{lines}  assertion: {msg}\n  \
             replay with: GOPIM_PT_SEED={base_seed:#x} GOPIM_PT_CASES={cases}\n"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    #[test]
    fn passing_property_draws_deterministically() {
        use std::cell::RefCell;
        let mut seen = Vec::new();
        for _ in 0..2 {
            let values = RefCell::new(Vec::new());
            check_with("probe", Config::cases(4), |d| {
                values.borrow_mut().push(d.draw("n", 0u64..1000));
            });
            seen.push(values.into_inner());
        }
        assert_eq!(seen[0], seen[1]);
        assert_eq!(seen[0].len(), 4);
    }

    #[test]
    fn failing_property_reports_minimal_case() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            check_with("always_small", Config::cases(32), |d| {
                let n = d.draw("n", 0usize..10_000);
                assert!(n < 50, "n too big");
            });
        }));
        let msg = match result {
            Ok(()) => panic!("property should have failed"),
            Err(p) => super::panic_message(p.as_ref()),
        };
        assert!(msg.contains("always_small"), "report: {msg}");
        assert!(msg.contains("GOPIM_PT_SEED"), "report: {msg}");
        // The shrinker should land on the boundary counterexample.
        assert!(msg.contains("n = 50"), "report: {msg}");
    }

    #[test]
    fn vec_draws_shrink_to_short_vectors() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            check_with("no_long_vecs", Config::cases(32), |d| {
                let v = d.vec("v", 0usize..100, |d| d.draw("x", 0u32..5));
                assert!(v.len() < 3);
            });
        }));
        let msg = match result {
            Ok(()) => panic!("property should have failed"),
            Err(p) => super::panic_message(p.as_ref()),
        };
        // Minimal failing vector has exactly 3 minimal elements.
        assert!(msg.contains("v = [0, 0, 0]"), "report: {msg}");
    }

    #[test]
    fn bools_and_picks_shrink_to_defaults() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            check_with("coin", Config::cases(64), |d| {
                let b = d.any_bool("b");
                let p = d.pick("p", &[16usize, 32, 64]);
                assert!(!(b && p >= 16));
            });
        }));
        let msg = match result {
            Ok(()) => panic!("property should have failed"),
            Err(p) => super::panic_message(p.as_ref()),
        };
        assert!(msg.contains("b = true"), "report: {msg}");
        assert!(msg.contains("p = 16"), "report: {msg}");
    }
}
