//! Domain generators shared by the ported property suites: CSR
//! graphs, degree profiles, and pipeline stage timing specs.

use crate::prop::Draw;
use gopim_graph::{CsrGraph, DegreeProfile};

/// Draws an arbitrary valid [`CsrGraph`] with `1..max_n` vertices and
/// up to `max_edges` (possibly parallel / self-loop) edges. Shrinks
/// toward the single-vertex empty graph.
pub fn csr_graph(d: &mut Draw, max_n: usize, max_edges: usize) -> CsrGraph {
    let (n, edges) = edge_list(d, max_n, max_edges);
    CsrGraph::from_edges(n, &edges)
}

/// Draws a vertex count and raw edge list (endpoints already reduced
/// modulo the vertex count) — for tests that need the edges
/// themselves.
pub fn edge_list(d: &mut Draw, max_n: usize, max_edges: usize) -> (usize, Vec<(u32, u32)>) {
    let n = d.draw("n", 1..max_n.max(2));
    let edges = d.vec("edges", 0..max_edges + 1, |d| {
        (d.draw("u", 0..n as u32), d.draw("v", 0..n as u32))
    });
    (n, edges)
}

/// Draws a [`DegreeProfile`] of `len_lo..len_hi` vertices with
/// degrees below `max_degree`.
pub fn degree_profile(
    d: &mut Draw,
    len_lo: usize,
    len_hi: usize,
    max_degree: u32,
) -> DegreeProfile {
    let degrees = d.vec("degrees", len_lo..len_hi, |d| d.draw("deg", 0..max_degree));
    DegreeProfile::from_degrees(degrees)
}

/// Timing spec for one pipeline stage, the raw material of allocator
/// and schedule properties. Plain data so the testkit stays below
/// `gopim-pipeline` / `gopim-alloc` in the dependency graph.
#[derive(Debug, Clone, PartialEq)]
pub struct StageTiming {
    /// Replicable compute time, ns.
    pub compute_ns: f64,
    /// Non-replicable write time, ns.
    pub write_ns: f64,
    /// Smallest compute quantum one replica can take, ns.
    pub quantum_ns: f64,
    /// Crossbars one replica of this stage occupies.
    pub crossbars_per_replica: usize,
}

/// Draws `lo..hi` stage timing specs with compute in
/// `0.5..max_compute_ns`, write in `0..max_write_ns`, and footprints
/// in `1..16`.
pub fn stage_timings(
    d: &mut Draw,
    lo: usize,
    hi: usize,
    max_compute_ns: f64,
    max_write_ns: f64,
) -> Vec<StageTiming> {
    d.vec("stages", lo..hi, |d| {
        let compute_ns = d.draw("compute_ns", 0.5..max_compute_ns);
        StageTiming {
            compute_ns,
            write_ns: d.draw("write_ns", 0.0..max_write_ns),
            quantum_ns: compute_ns / 64.0,
            crossbars_per_replica: d.draw("footprint", 1..16),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prop::{check_with, Config};

    #[test]
    fn generated_graphs_are_always_valid() {
        check_with("gen_csr_valid", Config::cases(32), |d| {
            let g = csr_graph(d, 64, 200);
            assert!(g.validate().is_ok());
            assert!(g.num_vertices() >= 1);
        });
    }

    #[test]
    fn generated_profiles_and_stages_are_well_formed() {
        check_with("gen_profile_stages", Config::cases(32), |d| {
            let p = degree_profile(d, 1, 100, 1000);
            assert!(p.num_vertices() >= 1);
            let stages = stage_timings(d, 2, 8, 2000.0, 50.0);
            assert!(stages.len() >= 2);
            for s in &stages {
                assert!(s.compute_ns >= 0.5);
                assert!(s.write_ns >= 0.0);
                assert!(s.crossbars_per_replica >= 1);
                assert!(s.quantum_ns <= s.compute_ns);
            }
        });
    }
}
