//! Hermetic in-repo testkit: property testing, golden snapshots, and
//! microbenchmarks with **zero external dependencies**.
//!
//! The build environment has no crates-io access, so `proptest` and
//! `criterion` can never resolve here. This crate replaces both with
//! small, deterministic, offline-runnable equivalents:
//!
//! - [`prop`] — a property-testing harness. Tests draw named random
//!   values through a [`prop::Draw`], the harness records the raw
//!   entropy stream, and on failure it *shrinks the stream* (zeroing,
//!   halving, truncating draws) to a minimal counterexample, then
//!   reports every named draw of that minimal case. Deterministic by
//!   default; `GOPIM_PT_SEED` / `GOPIM_PT_CASES` override the base
//!   seed and case count.
//! - [`golden`] — golden-snapshot checks. Results serialize to
//!   `tests/golden/*.txt` at the workspace root; numeric fields
//!   compare under a configurable relative tolerance, everything else
//!   exactly. `GOPIM_GOLDEN=update` regenerates the files.
//! - [`bench`] — a wall-clock microbenchmark runner (warmup, then
//!   median-of-N with MAD spread) that prints human-readable tables
//!   and machine-readable JSON lines, replacing criterion for the
//!   `crates/bench/benches/*` targets.
//! - [`gen`] — domain generators (CSR graphs, degree profiles, stage
//!   timing specs) shared by the ported property suites.
//!
//! The PRNG underneath everything is [`gopim_rng`]
//! (SplitMix64-seeded xoshiro256++), re-exported here so test code
//! needs only one import.

#![warn(missing_docs)]

pub mod bench;
pub mod gen;
pub mod golden;
pub mod prop;

pub use gopim_rng::{mix_seed, rngs::SmallRng, Rng, SeedableRng};

use std::path::PathBuf;

/// Absolute path of the workspace root (derived from this crate's
/// manifest directory at compile time).
pub fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        // lint:allow(no-panic-in-lib): CARGO_MANIFEST_DIR is a compile-time constant two levels below the root
        .expect("crates/testkit sits two levels below the workspace root")
        .to_path_buf()
}
