//! Wall-clock microbenchmark runner (the criterion replacement).
//!
//! Methodology: warm up, calibrate an iteration count so one sample
//! takes a fixed wall-clock slice, then time N samples and report the
//! **median** ns/iter with the **median absolute deviation** (MAD) as
//! the spread — both robust to scheduler noise, unlike mean ± stddev.
//!
//! Each result prints as a human-readable line and a machine-readable
//! JSON line. Environment knobs:
//!
//! - `GOPIM_BENCH_JSON=<path>` — append JSON lines to `<path>`
//!   (creating it if needed) instead of stdout, so reproduction runs
//!   can accumulate `BENCH_*.json` trajectories.
//! - `GOPIM_BENCH_SAMPLES=<n>` — sample count (default 15).
//! - `GOPIM_BENCH_FAST=1` — shrink warmup/sample budgets ~10× for
//!   smoke runs.
//! - `GOPIM_METRICS=1` — bracket each benchmark with a telemetry
//!   registry snapshot; JSON records gain a `"metrics"` object of
//!   per-iteration counter deltas (flops, edges, calls, …).
//!
//! ```no_run
//! let mut b = gopim_testkit::bench::Runner::new("allocator");
//! b.bench("greedy/100000", || 2 + 2);
//! b.finish();
//! ```

use std::hint::black_box;
use std::io::Write;
use std::time::{Duration, Instant};

/// One benchmark's summary statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// `group/name` identifier.
    pub id: String,
    /// The bench group (the runner's name), also recoverable as the
    /// prefix of `id` — carried explicitly so downstream consumers
    /// (`gopim bench-diff`) can group records without string surgery.
    pub group: String,
    /// Median time per iteration, ns.
    pub median_ns: f64,
    /// Median absolute deviation of the per-sample ns/iter values.
    pub mad_ns: f64,
    /// Fastest sample, ns/iter.
    pub min_ns: f64,
    /// Slowest sample, ns/iter.
    pub max_ns: f64,
    /// Number of timed samples.
    pub samples: usize,
    /// Iterations per sample.
    pub iters_per_sample: u64,
    /// Per-iteration telemetry counter deltas (`GOPIM_METRICS=1`
    /// runs only; empty otherwise).
    pub metrics: Vec<(String, f64)>,
}

impl Summary {
    /// Renders the JSON-lines record.
    pub fn to_json(&self) -> String {
        let mut json = format!(
            "{{\"id\":\"{}\",\"group\":\"{}\",\"median_ns\":{:.3},\"mad_ns\":{:.3},\"min_ns\":{:.3},\
             \"max_ns\":{:.3},\"samples\":{},\"iters_per_sample\":{}",
            escape(&self.id),
            escape(&self.group),
            self.median_ns,
            self.mad_ns,
            self.min_ns,
            self.max_ns,
            self.samples,
            self.iters_per_sample
        );
        if !self.metrics.is_empty() {
            json.push_str(",\"metrics\":{");
            for (i, (name, per_iter)) in self.metrics.iter().enumerate() {
                if i > 0 {
                    json.push(',');
                }
                json.push_str(&format!("\"{}\":{:.3}", escape(name), per_iter));
            }
            json.push('}');
        }
        json.push('}');
        json
    }
}

fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' | '\\' => vec!['\\', c],
            c if c.is_control() => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Formats a nanosecond quantity with a readable unit.
pub fn human_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Collects and reports benchmarks for one group (one bench target).
pub struct Runner {
    group: String,
    samples: usize,
    warmup: Duration,
    target_sample: Duration,
    results: Vec<Summary>,
}

impl Runner {
    /// A runner with env-configured budgets.
    pub fn new(group: &str) -> Self {
        let fast = std::env::var("GOPIM_BENCH_FAST")
            .map(|v| v != "0")
            .unwrap_or(false);
        let samples = std::env::var("GOPIM_BENCH_SAMPLES")
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(if fast { 7 } else { 15 });
        let (warmup_ms, sample_ms) = if fast { (10, 5) } else { (150, 50) };
        eprintln!("== bench group '{group}' ({samples} samples, median ± MAD) ==");
        Runner {
            group: group.to_string(),
            samples: samples.max(3),
            warmup: Duration::from_millis(warmup_ms),
            target_sample: Duration::from_millis(sample_ms),
            results: Vec::new(),
        }
    }

    /// Times `f`, printing the human-readable line immediately and
    /// recording the JSON record for [`Runner::finish`].
    pub fn bench<T>(&mut self, name: &str, mut f: impl FnMut() -> T) -> &Summary {
        // Warmup + calibration: run until the warmup budget elapses,
        // measuring a rough per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warmup {
            black_box(f());
            warm_iters += 1;
        }
        let est_iter_ns = (warm_start.elapsed().as_nanos() as f64 / warm_iters as f64).max(0.5);
        let iters_per_sample =
            ((self.target_sample.as_nanos() as f64 / est_iter_ns).ceil() as u64).max(1);

        // Under GOPIM_METRICS=1, bracket the timed samples with registry
        // snapshots so each record carries its per-iteration counter
        // deltas (e.g. flops or edges touched per call).
        let metrics_before =
            gopim_obs::metrics_enabled().then(|| gopim_obs::metrics::global().snapshot());
        let mut per_iter_ns: Vec<f64> = (0..self.samples)
            .map(|_| {
                let t = Instant::now();
                for _ in 0..iters_per_sample {
                    black_box(f());
                }
                t.elapsed().as_nanos() as f64 / iters_per_sample as f64
            })
            .collect();
        let metrics = metrics_before
            .map(|before| {
                let total_iters = (self.samples as u64 * iters_per_sample).max(1) as f64;
                gopim_obs::metrics::global()
                    .snapshot()
                    .counter_deltas(&before)
                    .into_iter()
                    .map(|(k, d)| (k, d as f64 / total_iters))
                    .collect()
            })
            .unwrap_or_default();
        per_iter_ns.sort_by(f64::total_cmp);
        let median_ns = median_sorted(&per_iter_ns);
        let mut deviations: Vec<f64> = per_iter_ns.iter().map(|v| (v - median_ns).abs()).collect();
        deviations.sort_by(f64::total_cmp);
        let summary = Summary {
            id: format!("{}/{}", self.group, name),
            group: self.group.clone(),
            median_ns,
            mad_ns: median_sorted(&deviations),
            min_ns: per_iter_ns[0],
            // lint:allow(no-panic-in-lib): samples >= 1, so the sorted per-iteration vector is non-empty
            max_ns: *per_iter_ns.last().unwrap(),
            samples: self.samples,
            iters_per_sample,
            metrics,
        };
        eprintln!(
            "  {:<44} {:>12}/iter  ± {:<10} ({} × {} iters)",
            summary.id,
            human_ns(summary.median_ns),
            human_ns(summary.mad_ns),
            summary.samples,
            summary.iters_per_sample
        );
        self.results.push(summary);
        // lint:allow(no-panic-in-lib): the summary was pushed on the line above
        self.results.last().unwrap()
    }

    /// Emits every JSON record — appended to `GOPIM_BENCH_JSON` when
    /// set, to stdout otherwise — and returns the summaries.
    pub fn finish(self) -> Vec<Summary> {
        let lines: String = self.results.iter().map(|s| s.to_json() + "\n").collect();
        match std::env::var("GOPIM_BENCH_JSON") {
            Ok(path) if !path.is_empty() => {
                let mut file = std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(&path)
                    // lint:allow(no-panic-in-lib): bench harness aborts loudly on an unusable GOPIM_BENCH_JSON path
                    .unwrap_or_else(|e| panic!("GOPIM_BENCH_JSON={path}: {e}"));
                file.write_all(lines.as_bytes())
                    // lint:allow(no-panic-in-lib): bench harness aborts loudly on an unusable GOPIM_BENCH_JSON path
                    .unwrap_or_else(|e| panic!("GOPIM_BENCH_JSON={path}: {e}"));
                eprintln!("  (JSON appended to {path})");
            }
            // lint:allow(no-print-in-lib): JSON records go to stdout when no GOPIM_BENCH_JSON sink is set
            _ => print!("{lines}"),
        }
        self.results
    }
}

fn median_sorted(sorted: &[f64]) -> f64 {
    let n = sorted.len();
    if n == 0 {
        return 0.0;
    }
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_and_mad_are_robust() {
        assert_eq!(median_sorted(&[1.0, 2.0, 100.0]), 2.0);
        assert_eq!(median_sorted(&[1.0, 2.0, 3.0, 100.0]), 2.5);
        assert_eq!(median_sorted(&[]), 0.0);
    }

    #[test]
    fn json_record_is_parseable_shape() {
        let s = Summary {
            id: "g/n \"q\"".into(),
            group: "g".into(),
            median_ns: 12.5,
            mad_ns: 0.5,
            min_ns: 12.0,
            max_ns: 14.0,
            samples: 15,
            iters_per_sample: 1000,
            metrics: Vec::new(),
        };
        let j = s.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\\\"q\\\""));
        assert!(j.contains("\"group\":\"g\""));
        assert!(j.contains("\"median_ns\":12.500"));
        // No metrics snapshot → no metrics key at all.
        assert!(!j.contains("\"metrics\""));
    }

    #[test]
    fn metrics_deltas_serialize_as_a_nested_object() {
        let s = Summary {
            id: "g/n".into(),
            group: "g".into(),
            median_ns: 1.0,
            mad_ns: 0.0,
            min_ns: 1.0,
            max_ns: 1.0,
            samples: 3,
            iters_per_sample: 10,
            metrics: vec![
                ("linalg.matmul.flops".into(), 524288.0),
                ("linalg.matmul.calls".into(), 1.0),
            ],
        };
        let j = s.to_json();
        assert!(
            j.contains(
                "\"metrics\":{\"linalg.matmul.flops\":524288.000,\"linalg.matmul.calls\":1.000}"
            ),
            "got: {j}"
        );
    }

    #[test]
    fn human_ns_picks_sane_units() {
        assert_eq!(human_ns(500.0), "500.0 ns");
        assert_eq!(human_ns(1500.0), "1.50 µs");
        assert_eq!(human_ns(2_500_000.0), "2.50 ms");
        assert_eq!(human_ns(3_000_000_000.0), "3.000 s");
    }
}
