//! Golden-snapshot checks with numeric tolerance.
//!
//! A golden test serializes results to text (see [`Report`] for the
//! standard scalar/table format), then calls [`check`]. Snapshots
//! live in `tests/golden/<name>.txt` at the workspace root, so they
//! are shared by every crate and reviewed like any other source file.
//!
//! Comparison is token-wise per line: tokens that parse as numbers on
//! both sides compare under a relative tolerance (default
//! [`DEFAULT_REL_TOL`]); everything else must match exactly. This
//! lets snapshots pin paper constants tightly while surviving the
//! last-ulp wobble of refactored float arithmetic.
//!
//! Set `GOPIM_GOLDEN=update` to (re)write the snapshot files instead
//! of diffing — the workflow for intentional result changes:
//!
//! ```text
//! GOPIM_GOLDEN=update cargo test -q        # regenerate
//! git diff tests/golden/                   # review the change
//! ```

use std::fmt::Display;
use std::fs;
use std::path::PathBuf;

/// Default relative tolerance for numeric tokens.
pub const DEFAULT_REL_TOL: f64 = 1e-9;

/// Directory holding every golden snapshot.
pub fn golden_dir() -> PathBuf {
    crate::workspace_root().join("tests").join("golden")
}

fn snapshot_path(name: &str) -> PathBuf {
    assert!(
        name.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-'),
        "golden name {name:?} must be [A-Za-z0-9_-]+"
    );
    golden_dir().join(format!("{name}.txt"))
}

fn update_mode() -> bool {
    std::env::var("GOPIM_GOLDEN")
        .map(|v| v == "update")
        .unwrap_or(false)
}

/// Compares `content` against `tests/golden/<name>.txt` with the
/// default tolerance, or rewrites the snapshot under
/// `GOPIM_GOLDEN=update`.
///
/// # Panics
///
/// Panics (failing the test) on any mismatch, with the first
/// differing line and regeneration instructions.
pub fn check(name: &str, content: &str) {
    check_with_tolerance(name, content, DEFAULT_REL_TOL);
}

/// [`check`] with an explicit relative tolerance for numeric tokens.
pub fn check_with_tolerance(name: &str, content: &str, rel_tol: f64) {
    let path = snapshot_path(name);
    if update_mode() {
        // lint:allow(no-panic-in-lib): snapshot update mode aborts loudly on an unwritable golden dir
        fs::create_dir_all(golden_dir()).expect("create tests/golden");
        let mut normalized = content.trim_end().to_string();
        normalized.push('\n');
        // lint:allow(no-panic-in-lib): snapshot update mode aborts loudly on an unwritable snapshot path
        fs::write(&path, normalized).unwrap_or_else(|e| panic!("write {path:?}: {e}"));
        eprintln!("golden '{name}': snapshot updated at {path:?}");
        return;
    }
    let expected = fs::read_to_string(&path).unwrap_or_else(|_| {
        // lint:allow(no-panic-in-lib): panicking is how the golden harness reports a missing snapshot to the test runner
        panic!(
            "golden '{name}': no snapshot at {path:?}\n  \
             generate it with: GOPIM_GOLDEN=update cargo test -q"
        )
    });
    if let Err(msg) = diff(&expected, content, rel_tol) {
        // lint:allow(no-panic-in-lib): panicking is how the golden harness reports a mismatch to the test runner
        panic!(
            "golden '{name}' mismatch against {path:?}\n  {msg}\n  \
             if the change is intentional: GOPIM_GOLDEN=update cargo test -q, \
             then review `git diff tests/golden/`"
        );
    }
}

/// Token-wise diff; `Ok(())` when equal within tolerance.
fn diff(expected: &str, actual: &str, rel_tol: f64) -> Result<(), String> {
    let exp_lines: Vec<&str> = expected.trim_end().lines().collect();
    let act_lines: Vec<&str> = actual.trim_end().lines().collect();
    if exp_lines.len() != act_lines.len() {
        return Err(format!(
            "line count differs: snapshot {} vs actual {}",
            exp_lines.len(),
            act_lines.len()
        ));
    }
    for (i, (e, a)) in exp_lines.iter().zip(&act_lines).enumerate() {
        let et: Vec<&str> = e.split_whitespace().collect();
        let at: Vec<&str> = a.split_whitespace().collect();
        let line_err = || {
            format!(
                "line {}:\n    snapshot: {}\n    actual:   {}",
                i + 1,
                e.trim_end(),
                a.trim_end()
            )
        };
        if et.len() != at.len() {
            return Err(line_err());
        }
        for (etok, atok) in et.iter().zip(&at) {
            match (etok.parse::<f64>(), atok.parse::<f64>()) {
                (Ok(x), Ok(y)) => {
                    if !close(x, y, rel_tol) {
                        return Err(format!(
                            "{} (numeric: {x} vs {y}, rel_tol {rel_tol:e})",
                            line_err()
                        ));
                    }
                }
                _ => {
                    if etok != atok {
                        return Err(line_err());
                    }
                }
            }
        }
    }
    Ok(())
}

fn close(x: f64, y: f64, rel_tol: f64) -> bool {
    if x == y {
        return true; // covers ±0 and exact integers
    }
    if !x.is_finite() || !y.is_finite() {
        return x.to_bits() == y.to_bits();
    }
    (x - y).abs() <= rel_tol * x.abs().max(y.abs()).max(1.0)
}

/// Builder for the standard snapshot format: `key = value` scalars
/// and aligned whitespace-separated tables.
#[derive(Debug, Default, Clone)]
pub struct Report {
    lines: Vec<String>,
}

impl Report {
    /// An empty report.
    pub fn new() -> Self {
        Report::default()
    }

    /// Appends one `key = value` scalar line. Floats format through
    /// `Display` (shortest round-trip), so snapshots are exact.
    pub fn scalar(&mut self, key: &str, value: impl Display) -> &mut Self {
        self.lines.push(format!("{key} = {value}"));
        self
    }

    /// Appends a blank separator line.
    pub fn blank(&mut self) -> &mut Self {
        self.lines.push(String::new());
        self
    }

    /// Appends a section heading.
    pub fn section(&mut self, title: &str) -> &mut Self {
        self.lines.push(format!("[{title}]"));
        self
    }

    /// Appends a table: a header row then one line per row, columns
    /// separated by two spaces.
    pub fn table<S: AsRef<str>>(&mut self, headers: &[&str], rows: &[Vec<S>]) -> &mut Self {
        self.lines.push(headers.join("  "));
        for row in rows {
            let cells: Vec<&str> = row.iter().map(|c| c.as_ref()).collect();
            self.lines.push(cells.join("  "));
        }
        self
    }

    /// Renders the report (trailing newline included).
    pub fn render(&self) -> String {
        let mut out = self.lines.join("\n");
        out.push('\n');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diff_accepts_within_tolerance_and_rejects_beyond() {
        assert!(diff("x = 1.0", "x = 1.0000000001", 1e-9).is_ok());
        assert!(diff("x = 1.0", "x = 1.1", 1e-9).is_err());
        assert!(diff("name ddi", "name ddi", 1e-9).is_ok());
        assert!(diff("name ddi", "name cora", 1e-9).is_err());
        assert!(diff("a\nb", "a", 1e-9).is_err());
    }

    #[test]
    fn mixed_tokens_compare_fieldwise() {
        // Numeric column drifts within tolerance, text must be exact.
        assert!(diff("ddi 29.31 ns", "ddi 29.310000000001 ns", 1e-9).is_ok());
        assert!(diff("ddi 29.31 ns", "ddi 29.32 ns", 1e-9).is_err());
    }

    #[test]
    fn report_renders_scalars_and_tables() {
        let mut r = Report::new();
        r.section("spec")
            .scalar("read_latency_ns", 29.31)
            .blank()
            .table(&["k", "v"], &[vec!["a", "1"], vec!["b", "2"]]);
        let s = r.render();
        assert_eq!(s, "[spec]\nread_latency_ns = 29.31\n\nk  v\na  1\nb  2\n");
    }

    #[test]
    fn close_handles_integers_and_signs() {
        assert!(close(16777216.0, 16777216.0, 1e-9));
        assert!(!close(-1.0, 1.0, 1e-9));
        assert!(close(0.0, -0.0, 1e-9));
    }
}
